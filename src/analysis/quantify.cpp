#include "analysis/quantify.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "cachesim/cache.h"
#include "common/rng.h"

namespace grinch::analysis {
namespace {

constexpr double kEps = 1e-9;  ///< float-summation slack for comparisons

/// %g-style compact formatting ("2", "1.58") for bit counts.
std::string fmt_bits(double bits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", bits);
  return buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Scatters the compact key value over the set bits of `mask` (bit i of
/// `compact` lands on the i-th lowest set bit of `mask`).
unsigned spread_over_mask(unsigned compact, unsigned mask) {
  unsigned out = 0;
  unsigned bit = 0;
  for (unsigned m = mask; m != 0; m &= m - 1, ++bit) {
    if ((compact >> bit) & 1u) out |= m & (~m + 1u);
  }
  return out;
}

/// One channel of one segment, quantified exhaustively: every base of
/// the attacker-known index bits x every fresh-key value.
struct ChannelQuantity {
  double bits = 0.0;      ///< average MI over bases
  double capacity = 0.0;  ///< max MI over bases
  unsigned classes = 1;   ///< at the first capacity-achieving base
  double expected_candidates = 1.0;
};

/// `row_line(index)` maps a concrete 4-bit lookup index to the observable
/// cache-line base the access lands on.
ChannelQuantity quantify_channel(
    unsigned key_mask, const std::function<std::uint64_t(unsigned)>& row_line) {
  ChannelQuantity q;
  const auto key_bits = static_cast<unsigned>(__builtin_popcount(key_mask));
  const std::uint32_t keyspace = 1u << key_bits;
  if (key_mask == 0) return q;  // nothing secret feeds this index

  double sum = 0.0;
  unsigned bases = 0;
  bool first = true;
  for (unsigned base = 0; base < 16; ++base) {
    if ((base & key_mask) != 0) continue;  // bases are a coset transversal
    const KeyClassPartition part =
        partition_keys(keyspace, [&](std::uint32_t key, Footprint& fp) {
          fp.push_back(row_line(base ^ spread_over_mask(key, key_mask)));
        });
    const double mi = part.mutual_information_bits();
    sum += mi;
    ++bases;
    if (first || mi > q.capacity + kEps) {
      first = false;
      q.capacity = mi;
      q.classes = static_cast<unsigned>(part.classes());
      q.expected_candidates = part.expected_class_size();
    }
  }
  q.bits = bases != 0 ? sum / bases : 0.0;
  return q;
}

}  // namespace

double RoundQuantity::sbox_bits() const noexcept {
  double total = 0.0;
  for (const SegmentQuantity& s : segments) total += s.sbox_bits;
  return total;
}

double RoundQuantity::perm_bits() const noexcept {
  double total = 0.0;
  for (const SegmentQuantity& s : segments) total += s.perm_bits;
  return total;
}

double RoundQuantity::sbox_capacity() const noexcept {
  double total = 0.0;
  for (const SegmentQuantity& s : segments) total += s.sbox_capacity;
  return total;
}

double RoundQuantity::perm_capacity() const noexcept {
  double total = 0.0;
  for (const SegmentQuantity& s : segments) total += s.perm_capacity;
  return total;
}

double QuantifyReport::measured_sbox_bits() const noexcept {
  double total = 0.0;
  for (const RoundQuantity& r : rounds) total += r.sbox_bits();
  return total;
}

double QuantifyReport::measured_perm_bits() const noexcept {
  double total = 0.0;
  for (const RoundQuantity& r : rounds) total += r.perm_bits();
  return total;
}

double QuantifyReport::capacity_bits_per_observation() const noexcept {
  double best = 0.0;
  for (const RoundQuantity& r : rounds) {
    best = std::max(best, r.sbox_capacity() + r.perm_capacity());
  }
  return best;
}

double QuantifyReport::expected_residual_bits() const noexcept {
  // Richest round by capacity: the observation the staged attack actually
  // buys.  Residual = log2 of the expected surviving S-Box-channel
  // candidate product (the elimination engine probes S-Box lines).
  const RoundQuantity* best = nullptr;
  double best_cap = -1.0;
  for (const RoundQuantity& r : rounds) {
    const double cap = r.sbox_capacity() + r.perm_capacity();
    if (cap > best_cap + kEps) {
      best_cap = cap;
      best = &r;
    }
  }
  if (best == nullptr) return 0.0;
  double residual = 0.0;
  for (const SegmentQuantity& s : best->segments) {
    residual += std::log2(s.sbox_expected_candidates);
  }
  return residual;
}

bool QuantifyReport::within_taint_bound() const noexcept {
  return measured_sbox_bits() <= taint_sbox_bound + kEps &&
         measured_perm_bits() <= taint_perm_bound + kEps;
}

bool QuantifyReport::within_budget() const noexcept {
  return std::abs(measured_sbox_bits() - budget_sbox_bits) <=
             budget_tolerance &&
         std::abs(measured_perm_bits() - budget_perm_bits) <= budget_tolerance;
}

QuantifyReport quantify(const AnalysisTarget& target,
                        const QuantifyConfig& cfg) {
  QuantifyReport report;
  report.target = target.name;
  report.description = target.description;
  report.budget_sbox_bits = target.quantify.budget_sbox_bits;
  report.budget_perm_bits = target.quantify.budget_perm_bits;
  report.budget_tolerance = target.quantify.budget_tolerance;

  const unsigned rounds =
      cfg.rounds != 0 ? cfg.rounds : target.analysis_rounds;
  report.rounds_analyzed = rounds;
  const cachesim::Cache cache{target.cache};
  const CipherModel& model = target.model;

  const bool sbox_observable = target.observe_sbox && model.sbox_lookups;
  const bool perm_observable = target.observe_perm && model.perm_lookups;

  // Pass 1: exhaustive per-segment class enumeration per attacked round,
  // plus the taint pass's upper bounds over the same accesses.
  for (unsigned r = 0; r < rounds; ++r) {
    RoundQuantity round_q;
    round_q.round = r;
    for (const TaintedAccess& a : attacked_round_accesses(model, r)) {
      if (a.kind == gift::TableAccess::Kind::kSBox) {
        if (target.observe_sbox) {
          report.taint_sbox_bound +=
              leaked_key_bits(a, target.layout, cache);
        }
        SegmentQuantity seg;
        seg.segment = a.segment;
        for (unsigned b = 0; b < 4; ++b) {
          if (carries_key(a.index_taint[b])) seg.key_mask |= 1u << b;
        }
        seg.key_bits =
            static_cast<unsigned>(__builtin_popcount(seg.key_mask));
        if (sbox_observable) {
          const ChannelQuantity q =
              quantify_channel(seg.key_mask, [&](unsigned index) {
                return cache.line_base(target.layout.sbox_row_addr(index));
              });
          seg.sbox_bits = q.bits;
          seg.sbox_capacity = q.capacity;
          seg.sbox_classes = q.classes;
          seg.sbox_expected_candidates = q.expected_candidates;
        }
        if (perm_observable && target.quantify.sbox_value) {
          // The PermBits row is indexed by the substituted nibble: the
          // S-Box bijection decides which rows the fresh key can reach.
          const unsigned s = a.segment;
          const ChannelQuantity q =
              quantify_channel(seg.key_mask, [&](unsigned index) {
                return cache.line_base(target.layout.perm_row_addr(
                    s, target.quantify.sbox_value(index)));
              });
          seg.perm_bits = q.bits;
          seg.perm_capacity = q.capacity;
          seg.perm_classes = q.classes;
        }
        round_q.segments.push_back(seg);
      } else if (target.observe_perm) {
        report.taint_perm_bound += leaked_key_bits(a, target.layout, cache);
      }
    }
    report.rounds.push_back(std::move(round_q));
  }

  // Pass 2: per-cache-line breakdown of the S-Box table in the first
  // key-dependent attacked round, at the reference (all-zero) base.
  if (sbox_observable) {
    const RoundQuantity* line_round = nullptr;
    for (const RoundQuantity& r : report.rounds) {
      bool key_fed = false;
      for (const SegmentQuantity& s : r.segments) key_fed |= s.key_bits > 0;
      if (key_fed) {
        line_round = &r;
        break;
      }
    }
    if (line_round != nullptr) {
      report.line_round = line_round->round;
      // Universe: the distinct lines the 16 S-Box rows occupy, in address
      // order; miss probability multiplies across segments (fresh
      // round-key bits are independent across segments).
      std::map<std::uint64_t, double> miss_probability;
      for (unsigned index = 0; index < 16; ++index) {
        miss_probability.emplace(
            cache.line_base(target.layout.sbox_row_addr(index)), 1.0);
      }
      for (const SegmentQuantity& s : line_round->segments) {
        const std::uint32_t keyspace = 1u << s.key_bits;
        std::map<std::uint64_t, unsigned> touches;
        for (std::uint32_t key = 0; key < keyspace; ++key) {
          ++touches[cache.line_base(target.layout.sbox_row_addr(
              spread_over_mask(key, s.key_mask)))];
        }
        for (auto& [line, miss] : miss_probability) {
          const auto it = touches.find(line);
          const double p_touch =
              it == touches.end()
                  ? 0.0
                  : static_cast<double>(it->second) / keyspace;
          miss *= 1.0 - p_touch;
        }
      }
      for (const auto& [line, miss] : miss_probability) {
        LineQuantity lq;
        lq.line_base = line;
        lq.touch_probability = 1.0 - miss;
        lq.bits = binary_entropy_bits(lq.touch_probability);
        report.sbox_lines.push_back(lq);
      }
    }
  }

  // Pass 3: fixed-seed sampled whole-trace estimate on the real
  // implementation (cumulative channel — every round key unknown).
  const unsigned budget = cfg.sample_budget != 0
                              ? cfg.sample_budget
                              : target.quantify.sample_budget;
  if (cfg.run_sampled && budget != 0 && target.run) {
    const std::uint64_t seed = cfg.sample_seed != 0
                                   ? cfg.sample_seed
                                   : target.quantify.sample_seed;
    Xoshiro256 rng{seed};
    const std::uint64_t pt_lo = rng.block64();
    const std::uint64_t pt_hi = rng.block64();
    gift::VectorTraceSink sink;
    const SampledClasses sampled =
        sample_footprint_classes(budget, [&](Footprint& fp) {
          const Key128 key = rng.key128();
          sink.clear();
          target.run(pt_lo, pt_hi, key, rounds, &sink);
          for (const gift::TableAccess& a : sink.accesses()) {
            if (a.round >= rounds || !target.observes(a.kind)) continue;
            fp.push_back(cache.line_base(a.addr));
          }
        });
    report.sampled.samples = sampled.samples;
    report.sampled.classes = sampled.classes;
    report.sampled.bits = sampled.bits;
  }

  return report;
}

std::vector<QuantifyReport> quantify_all(const QuantifyConfig& cfg) {
  std::vector<QuantifyReport> reports;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  reports.reserve(targets.size());
  for (const AnalysisTarget& target : targets) {
    reports.push_back(quantify(target, cfg));
  }
  return reports;
}

std::string QuantifyReport::to_text(bool verbose) const {
  std::string out;
  out += "target : " + target + " — " + description + "\n";
  out += "measure: " + fmt_bits(measured_sbox_bits()) +
         " bits via S-Box + " + fmt_bits(measured_perm_bits()) +
         " via PermBits across " + std::to_string(rounds_analyzed) +
         " rounds (taint bound " + fmt_bits(taint_sbox_bound) + " + " +
         fmt_bits(taint_perm_bound) + ")\n";
  out += "per obs: capacity " + fmt_bits(capacity_bits_per_observation()) +
         " bits; expected residual " + fmt_bits(expected_residual_bits()) +
         " bits/segment-set after one clean observation\n";
  for (const RoundQuantity& r : rounds) {
    const double bits = r.sbox_bits() + r.perm_bits();
    if (bits == 0.0 && !verbose) continue;
    out += "  round " + std::to_string(r.round + 1) + ": " +
           fmt_bits(r.sbox_bits()) + " S-Box + " + fmt_bits(r.perm_bits()) +
           " PermBits bits (" + std::to_string(r.segments.size()) +
           " segments)\n";
    if (verbose) {
      for (const SegmentQuantity& s : r.segments) {
        out += "    segment " + std::to_string(s.segment) + ": " +
               std::to_string(s.key_bits) + " fresh key bits -> " +
               std::to_string(s.sbox_classes) + " classes, " +
               fmt_bits(s.sbox_bits) + " bits (capacity " +
               fmt_bits(s.sbox_capacity) + "), E[candidates] " +
               fmt_bits(s.sbox_expected_candidates);
        if (s.perm_bits > 0.0) {
          out += "; perm " + fmt_bits(s.perm_bits) + " bits (" +
                 std::to_string(s.perm_classes) + " classes)";
        }
        out += "\n";
      }
    }
  }
  if (!sbox_lines.empty() && verbose) {
    out += "  S-Box lines, round " + std::to_string(line_round + 1) + ":\n";
    for (const LineQuantity& l : sbox_lines) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "    line 0x%llx: p(touch) %.4g, %.4g bits\n",
                    static_cast<unsigned long long>(l.line_base),
                    l.touch_probability, l.bits);
      out += buf;
    }
  }
  if (sampled.samples != 0) {
    out += "sampled: " + std::to_string(sampled.classes) +
           " distinct footprints over " + std::to_string(sampled.samples) +
           " keys -> >= " + fmt_bits(sampled.bits) +
           " bits/observation (cumulative channel)\n";
  }
  out += "budget : declared " + fmt_bits(budget_sbox_bits) + " + " +
         fmt_bits(budget_perm_bits) + " bits — ";
  out += within_budget() ? "within budget" : "DRIFTED";
  out += within_taint_bound() ? "" : " [EXCEEDS TAINT BOUND]";
  out += "\n";
  return out;
}

std::string QuantifyReport::to_json() const {
  std::string out = "{\"target\":\"";
  append_json_escaped(out, target);
  out += "\",\"description\":\"";
  append_json_escaped(out, description);
  out += "\",\"rounds_analyzed\":" + std::to_string(rounds_analyzed);
  out += ",\"measured_sbox_bits\":" + fmt_bits(measured_sbox_bits());
  out += ",\"measured_perm_bits\":" + fmt_bits(measured_perm_bits());
  out += ",\"measured_total_bits\":" + fmt_bits(measured_total_bits());
  out += ",\"capacity_bits_per_observation\":" +
         fmt_bits(capacity_bits_per_observation());
  out += ",\"expected_residual_bits\":" + fmt_bits(expected_residual_bits());
  out += ",\"taint_sbox_bound\":" + fmt_bits(taint_sbox_bound);
  out += ",\"taint_perm_bound\":" + fmt_bits(taint_perm_bound);
  out += ",\"within_taint_bound\":";
  out += within_taint_bound() ? "true" : "false";
  out += ",\"budget\":{\"sbox_bits\":" + fmt_bits(budget_sbox_bits);
  out += ",\"perm_bits\":" + fmt_bits(budget_perm_bits);
  out += ",\"tolerance\":" + fmt_bits(budget_tolerance);
  out += ",\"ok\":";
  out += within_budget() ? "true" : "false";
  out += "},\"rounds\":[";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const RoundQuantity& r = rounds[i];
    if (i != 0) out.push_back(',');
    out += "{\"round\":" + std::to_string(r.round + 1);
    out += ",\"sbox_bits\":" + fmt_bits(r.sbox_bits());
    out += ",\"perm_bits\":" + fmt_bits(r.perm_bits());
    out += ",\"sbox_capacity\":" + fmt_bits(r.sbox_capacity());
    out += ",\"segments\":[";
    for (std::size_t j = 0; j < r.segments.size(); ++j) {
      const SegmentQuantity& s = r.segments[j];
      if (j != 0) out.push_back(',');
      out += "{\"segment\":" + std::to_string(s.segment);
      out += ",\"key_bits\":" + std::to_string(s.key_bits);
      out += ",\"sbox_bits\":" + fmt_bits(s.sbox_bits);
      out += ",\"sbox_capacity\":" + fmt_bits(s.sbox_capacity);
      out += ",\"sbox_classes\":" + std::to_string(s.sbox_classes);
      out += ",\"expected_candidates\":" +
             fmt_bits(s.sbox_expected_candidates);
      out += ",\"perm_bits\":" + fmt_bits(s.perm_bits);
      out += "}";
    }
    out += "]}";
  }
  out += "],\"sbox_lines\":[";
  for (std::size_t i = 0; i < sbox_lines.size(); ++i) {
    const LineQuantity& l = sbox_lines[i];
    if (i != 0) out.push_back(',');
    out += "{\"line_base\":" + std::to_string(l.line_base);
    out += ",\"touch_probability\":" + fmt_bits(l.touch_probability);
    out += ",\"bits\":" + fmt_bits(l.bits);
    out += "}";
  }
  out += "],\"sampled\":{\"samples\":" + std::to_string(sampled.samples);
  out += ",\"classes\":" + std::to_string(sampled.classes);
  out += ",\"bits\":" + fmt_bits(sampled.bits);
  out += "},\"ok\":";
  out += ok() ? "true" : "false";
  out += "}";
  return out;
}

std::string quantify_reports_to_json(
    const std::vector<QuantifyReport>& reports) {
  std::string out = "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += reports[i].to_json();
  }
  out += "]";
  return out;
}

}  // namespace grinch::analysis
