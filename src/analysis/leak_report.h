// Structured leakcheck verdicts: per-round, per-segment leaked-bit counts
// plus the static/dynamic agreement check, with text and JSON emission.
//
// The per-round numbers use the paper's cross-round attack model (only
// the attacked round's fresh key bits are unknown), so for table GIFT
// they reproduce the headline "2 key bits per segment per attacked
// round" of PAPER.md — 16 segments x 2 bits x 4 rounds = the full
// 128-bit key.  Rounds are reported 1-based to match the paper's text
// (paper round 2 = code round 1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/taint.h"
#include "analysis/trace_diff.h"

namespace grinch::analysis {

/// Leak of one segment's S-Box lookup in one attacked round.
struct SegmentLeak {
  unsigned segment = 0;
  double sbox_bits = 0.0;  ///< fresh key bits observable at line granularity
  std::array<Taint, 4> index_taint{};  ///< taint of index bits 0..3
};

/// Leak of one attacked round.
struct RoundLeak {
  unsigned round = 0;  ///< 0-based code round (display adds 1)
  std::vector<SegmentLeak> segments;
  double perm_bits = 0.0;  ///< aggregate leak through PermBits lookups

  [[nodiscard]] double sbox_bits() const noexcept;
};

/// Result of the static taint pass.
struct StaticReport {
  bool leaky = false;  ///< any access exposes KEY taint (cumulative mode)
  unsigned rounds_analyzed = 0;
  std::vector<RoundLeak> rounds;  ///< cross-round model, round by round

  /// Sum of per-segment S-Box leaks over the analyzed rounds — the key
  /// bits the paper's staged attack can recover from them.
  [[nodiscard]] double recoverable_bits() const noexcept;
};

/// Combined verdict for one target.
struct LeakReport {
  std::string target;
  std::string description;
  bool expected_leaky = true;

  StaticReport static_pass;
  TraceDiffResult dynamic_pass;

  [[nodiscard]] bool leaky() const noexcept { return static_pass.leaky; }
  /// Static and dynamic oracles agree.
  [[nodiscard]] bool consistent() const noexcept {
    return static_pass.leaky == !dynamic_pass.equivalent();
  }
  /// Verdict matches the registered expectation (the CI regression gate).
  [[nodiscard]] bool as_expected() const noexcept {
    return leaky() == expected_leaky && consistent();
  }

  /// Human-readable report; `verbose` adds per-segment taint detail.
  [[nodiscard]] std::string to_text(bool verbose = false) const;
  [[nodiscard]] std::string to_json() const;
};

/// JSON array over several reports.
[[nodiscard]] std::string reports_to_json(
    const std::vector<LeakReport>& reports);

}  // namespace grinch::analysis
