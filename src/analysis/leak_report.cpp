#include "analysis/leak_report.h"

#include <cstdio>

namespace grinch::analysis {
namespace {

/// %g-style compact formatting ("2", "1.58") for bit counts.
std::string fmt_bits(double bits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", bits);
  return buf;
}

char taint_char(Taint t) {
  if (carries_key(t)) return 'K';
  return (t & kPlaintext) != 0 ? 'P' : '-';
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

double RoundLeak::sbox_bits() const noexcept {
  double total = 0.0;
  for (const SegmentLeak& s : segments) total += s.sbox_bits;
  return total;
}

double StaticReport::recoverable_bits() const noexcept {
  double total = 0.0;
  for (const RoundLeak& r : rounds) total += r.sbox_bits();
  return total;
}

std::string LeakReport::to_text(bool verbose) const {
  std::string out;
  out += "target : " + target + " — " + description + "\n";
  out += "static : ";
  out += static_pass.leaky ? "LEAKY" : "leak-free";
  out += " (" + fmt_bits(static_pass.recoverable_bits()) +
         " recoverable key bits across " +
         std::to_string(static_pass.rounds_analyzed) + " rounds)\n";
  for (const RoundLeak& r : static_pass.rounds) {
    const double bits = r.sbox_bits();
    if (bits == 0.0 && r.perm_bits == 0.0 && !verbose) continue;
    out += "  round " + std::to_string(r.round + 1) + ": " + fmt_bits(bits) +
           " key bits via S-Box (" + std::to_string(r.segments.size()) +
           " segments)";
    if (r.perm_bits > 0.0) {
      out += " + " + fmt_bits(r.perm_bits) + " via PermBits LUT";
    }
    out += "\n";
    if (verbose) {
      for (const SegmentLeak& s : r.segments) {
        out += "    segment " + std::to_string(s.segment) + ": " +
               fmt_bits(s.sbox_bits) + " bits, index taint [";
        for (unsigned b = 0; b < 4; ++b) {
          if (b != 0) out.push_back(' ');
          out.push_back(taint_char(s.index_taint[b]));
        }
        out += "]\n";
      }
    }
  }
  out += "dynamic: ";
  if (dynamic_pass.equivalent()) {
    out += "equivalent traces in " + std::to_string(dynamic_pass.trials) +
           "/" + std::to_string(dynamic_pass.trials) + " key pairs\n";
  } else {
    out += "DIVERGED in " + std::to_string(dynamic_pass.diverged) + "/" +
           std::to_string(dynamic_pass.trials) + " key pairs (first: trial " +
           std::to_string(dynamic_pass.first_trial) + ", access " +
           std::to_string(dynamic_pass.first_access) + ", round " +
           std::to_string(dynamic_pass.first_round + 1) + ")\n";
  }
  out += "verdict: ";
  out += leaky() ? "LEAKY" : "leak-free";
  out += consistent() ? " (static and dynamic agree)"
                      : " [INCONSISTENT: static and dynamic disagree]";
  if (leaky() != expected_leaky) out += " [UNEXPECTED]";
  out += "\n";
  return out;
}

std::string LeakReport::to_json() const {
  std::string out = "{\"target\":\"";
  append_json_escaped(out, target);
  out += "\",\"description\":\"";
  append_json_escaped(out, description);
  out += "\",\"expected_leaky\":";
  out += expected_leaky ? "true" : "false";
  out += ",\"leaky\":";
  out += leaky() ? "true" : "false";
  out += ",\"consistent\":";
  out += consistent() ? "true" : "false";
  out += ",\"static\":{\"leaky\":";
  out += static_pass.leaky ? "true" : "false";
  out += ",\"rounds_analyzed\":" + std::to_string(static_pass.rounds_analyzed);
  out += ",\"recoverable_bits\":" + fmt_bits(static_pass.recoverable_bits());
  out += ",\"rounds\":[";
  for (std::size_t i = 0; i < static_pass.rounds.size(); ++i) {
    const RoundLeak& r = static_pass.rounds[i];
    if (i != 0) out.push_back(',');
    out += "{\"round\":" + std::to_string(r.round + 1);
    out += ",\"sbox_bits\":" + fmt_bits(r.sbox_bits());
    out += ",\"perm_bits\":" + fmt_bits(r.perm_bits);
    out += ",\"segments\":[";
    for (std::size_t j = 0; j < r.segments.size(); ++j) {
      const SegmentLeak& s = r.segments[j];
      if (j != 0) out.push_back(',');
      out += "{\"segment\":" + std::to_string(s.segment);
      out += ",\"bits\":" + fmt_bits(s.sbox_bits);
      out += ",\"index_taint\":\"";
      for (unsigned b = 0; b < 4; ++b) out.push_back(taint_char(s.index_taint[b]));
      out += "\"}";
    }
    out += "]}";
  }
  out += "]},\"dynamic\":{\"trials\":" + std::to_string(dynamic_pass.trials);
  out += ",\"diverged\":" + std::to_string(dynamic_pass.diverged);
  if (!dynamic_pass.equivalent()) {
    out += ",\"first_trial\":" + std::to_string(dynamic_pass.first_trial);
    out += ",\"first_access\":" + std::to_string(dynamic_pass.first_access);
    out += ",\"first_round\":" + std::to_string(dynamic_pass.first_round + 1);
  }
  out += "}}";
  return out;
}

std::string reports_to_json(const std::vector<LeakReport>& reports) {
  std::string out = "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += reports[i].to_json();
  }
  out += "]";
  return out;
}

}  // namespace grinch::analysis
