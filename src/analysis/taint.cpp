#include "analysis/taint.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gift/gift128.h"
#include "gift/gift64.h"
#include "present/present.h"

namespace grinch::analysis {
namespace {

/// GIFT-64 round keys land on bits 4i (V_i) and 4i+1 (U_i).
std::vector<unsigned> gift64_key_positions(unsigned /*round*/) {
  std::vector<unsigned> pos;
  pos.reserve(32);
  for (unsigned i = 0; i < 16; ++i) {
    pos.push_back(4 * i);
    pos.push_back(4 * i + 1);
  }
  return pos;
}

/// GIFT-128 round keys land on bits 4i+1 (V_i) and 4i+2 (U_i).
std::vector<unsigned> gift128_key_positions(unsigned /*round*/) {
  std::vector<unsigned> pos;
  pos.reserve(64);
  for (unsigned i = 0; i < 32; ++i) {
    pos.push_back(4 * i + 1);
    pos.push_back(4 * i + 2);
  }
  return pos;
}

/// PRESENT XORs a full 64-bit round key into the whole state.
std::vector<unsigned> present_key_positions(unsigned /*round*/) {
  std::vector<unsigned> pos(64);
  for (unsigned i = 0; i < 64; ++i) pos[i] = i;
  return pos;
}

Taint key_taint_for_round(const KeyTaintPolicy& policy, unsigned round) {
  switch (policy.mode) {
    case KeyTaintPolicy::Mode::kAll:
      return kKey;
    case KeyTaintPolicy::Mode::kOnly:
      return round == policy.round ? kKey : kPublic;
    case KeyTaintPolicy::Mode::kNone:
      return kPublic;
  }
  return kPublic;
}

}  // namespace

CipherModel gift64_table_model() {
  CipherModel m;
  m.name = "gift64-table";
  m.state_bits = 64;
  m.max_rounds = gift::Gift64::kRounds;
  m.perm = &gift::gift64_permutation();
  m.key_positions = gift64_key_positions;
  return m;
}

CipherModel gift128_table_model() {
  CipherModel m;
  m.name = "gift128-table";
  m.state_bits = 128;
  m.max_rounds = gift::Gift128::kRounds;
  m.perm = &gift::gift128_permutation();
  m.key_positions = gift128_key_positions;
  return m;
}

CipherModel present80_table_model() {
  CipherModel m;
  m.name = "present80-table";
  m.state_bits = 64;
  m.max_rounds = present::Present80::kRounds;
  m.key_add_before_sbox = true;
  m.perm = &gift::present_permutation();
  m.key_positions = present_key_positions;
  return m;
}

CipherModel gift64_bitsliced_model() {
  CipherModel m = gift64_table_model();
  m.name = "gift64-bitsliced";
  m.sbox_lookups = false;
  m.perm_lookups = false;
  return m;
}

CipherModel gift64_packed_model() {
  CipherModel m = gift64_table_model();
  m.name = "gift64-packed-sbox";
  m.perm_lookups = false;  // PermBits in registers completes the mitigation
  return m;
}

std::vector<TaintedAccess> propagate_taint(const CipherModel& model,
                                           unsigned rounds,
                                           const KeyTaintPolicy& policy) {
  const unsigned n = model.state_bits;
  const unsigned run = std::min(rounds, model.max_rounds);
  std::vector<Taint> state(n, kPlaintext);
  std::vector<Taint> next(n, kPublic);
  std::vector<TaintedAccess> accesses;

  const auto add_round_key = [&](unsigned r) {
    const Taint t = key_taint_for_round(policy, r);
    for (const unsigned pos : model.key_positions(r)) {
      state[pos] = static_cast<Taint>(state[pos] | t);
    }
  };

  for (unsigned r = 0; r < run; ++r) {
    if (model.key_add_before_sbox) add_round_key(r);

    // SubCells: the lookup index of segment s is state bits 4s..4s+3; every
    // S-Box output bit may depend on every input bit, so all four output
    // bits take the join.  A bitsliced SubCells performs the same abstract
    // transformation but issues no lookup.
    for (unsigned s = 0; s < model.segments(); ++s) {
      const std::array<Taint, 4> in{state[4 * s], state[4 * s + 1],
                                    state[4 * s + 2], state[4 * s + 3]};
      if (model.sbox_lookups) {
        accesses.push_back(
            TaintedAccess{gift::TableAccess::Kind::kSBox, r, s, in});
      }
      const auto joined =
          static_cast<Taint>(in[0] | in[1] | in[2] | in[3]);
      for (unsigned b = 0; b < 4; ++b) state[4 * s + b] = joined;
    }

    // PermBits LUT variant indexes PERM[s][v] with the post-SubCells
    // nibble, so the lookup leaks the joined segment taint.
    if (model.perm_lookups) {
      for (unsigned s = 0; s < model.segments(); ++s) {
        const Taint t = state[4 * s];
        accesses.push_back(TaintedAccess{gift::TableAccess::Kind::kPerm, r, s,
                                         {t, t, t, t}});
      }
    }

    // The permutation itself only moves taint bits around.
    std::fill(next.begin(), next.end(), kPublic);
    for (unsigned i = 0; i < n; ++i) {
      next[model.perm->forward(i)] = state[i];
    }
    state.swap(next);

    // AddRoundKey (+ round constant, which is PUBLIC and taint-neutral).
    if (!model.key_add_before_sbox) add_round_key(r);
  }
  return accesses;
}

std::vector<TaintedAccess> attacked_round_accesses(const CipherModel& model,
                                                   unsigned round) {
  KeyTaintPolicy policy;
  if (model.key_add_before_sbox) {
    policy = KeyTaintPolicy::fresh_only(round);
  } else if (round == 0) {
    // GIFT's round-0 indices see no key at all.
    policy.mode = KeyTaintPolicy::Mode::kNone;
  } else {
    policy = KeyTaintPolicy::fresh_only(round - 1);
  }

  std::vector<TaintedAccess> all = propagate_taint(model, round + 1, policy);
  std::erase_if(all,
                [round](const TaintedAccess& a) { return a.round != round; });
  return all;
}

double leaked_key_bits(const TaintedAccess& access,
                       const gift::TableLayout& layout,
                       const cachesim::Cache& cache) {
  unsigned key_mask = 0;
  for (unsigned b = 0; b < 4; ++b) {
    if (carries_key(access.index_taint[b])) key_mask |= 1u << b;
  }
  if (key_mask == 0) return 0.0;

  const auto row_addr = [&](unsigned index) {
    return access.kind == gift::TableAccess::Kind::kSBox
               ? layout.sbox_row_addr(index)
               : layout.perm_row_addr(access.segment, index);
  };

  // For every fixed assignment of the attacker-known index bits, count the
  // distinct cache lines reachable by varying the KEY-tainted bits; the
  // worst case bounds what one observation reveals about those key bits.
  std::size_t worst = 1;
  for (unsigned base = 0; base < 16; ++base) {
    if ((base & key_mask) != 0) continue;
    std::set<std::uint64_t> lines;
    unsigned sub = key_mask;
    for (;;) {
      lines.insert(cache.line_base(row_addr(base | sub)));
      if (sub == 0) break;
      sub = (sub - 1) & key_mask;
    }
    worst = std::max(worst, lines.size());
  }
  return std::log2(static_cast<double>(worst));
}

}  // namespace grinch::analysis
