// leakcheck pass 3 — quantitative leakage analysis.
//
// The taint pass (taint.h) proves *whether* a cache line depends on key
// material; this engine measures *how much*, in Shannon bits, by
// enumerating the key-equivalence classes (key_class.h) the observable
// cache-line footprint induces.  For every attacked round and segment it
// models the concrete index algebra of the cross-round attack:
//
//     S-Box channel:    line( sbox_row_addr( base XOR k ) )
//     PermBits channel: line( perm_row_addr( s, SBOX[ base XOR k ] ) )
//
// where `base` is the attacker-known part of the lookup index (chosen
// plaintext + recovered earlier round keys) and `k` ranges over the
// fresh key bits the taint pass marked on that index (<= 4 bits per
// segment, so the classes are enumerated exhaustively: every base x
// every key).  Per segment the report carries
//
//  * bits per observation  — I(K; footprint), averaged over bases;
//  * channel capacity      — max over bases (the best a chosen-plaintext
//                            attacker can extract from one observation);
//  * equivalence classes and the expected surviving candidate count —
//    the candidate-set size the elimination engine should expect after
//    one clean observation.
//
// Round and target totals sum the per-segment numbers (fresh round-key
// bits are distinct master-key bits, so segment channels are
// information-disjoint).  Two cross-checks anchor the output:
//
//  * the taint pass's leaked_key_bits() is a sound upper bound, so
//    measured <= taint bound must hold per channel (within_taint_bound);
//  * the target's declared QuantifySpec budget must match the measured
//    bits exactly (within_budget) — the CI leakage-budget gate.
//
// Key spaces the per-segment enumeration cannot cover — the *joint*
// fresh-key space of a whole round, observed as one union footprint by a
// real probe, under a full random Key128 — are handled by a fixed-seed
// sampled pass over the target's dynamic runner (sample_budget draws),
// whose plug-in entropy is reported as a lower-bound estimate of the
// cumulative per-observation leak.
//
// Baseline table GIFT-64 reproduces the paper's analytically known
// figure: 2.0 bits per segment per attacked round through the S-Box
// channel (tests/analysis/quantify_test.cpp pins it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/key_class.h"
#include "analysis/registry.h"

namespace grinch::analysis {

/// Quantified leak of one segment's lookups in one attacked round.
struct SegmentQuantity {
  unsigned segment = 0;
  unsigned key_mask = 0;  ///< in-nibble positions of the fresh key bits
  unsigned key_bits = 0;  ///< popcount(key_mask): fresh bits feeding the index

  // S-Box channel (the paper's channel; zero when not observed).
  double sbox_bits = 0.0;      ///< I(K; footprint) averaged over bases
  double sbox_capacity = 0.0;  ///< max over bases
  unsigned sbox_classes = 1;   ///< classes at a capacity-achieving base
  double sbox_expected_candidates = 1.0;  ///< E[|class|] at that base

  // PermBits-LUT channel (zero when computed in registers).
  double perm_bits = 0.0;
  double perm_capacity = 0.0;
  unsigned perm_classes = 1;
};

/// Quantified leak of one attacked round.
struct RoundQuantity {
  unsigned round = 0;  ///< 0-based code round (display adds 1)
  std::vector<SegmentQuantity> segments;

  [[nodiscard]] double sbox_bits() const noexcept;
  [[nodiscard]] double perm_bits() const noexcept;
  [[nodiscard]] double sbox_capacity() const noexcept;
  [[nodiscard]] double perm_capacity() const noexcept;
};

/// Per-cache-line leak: the binary "was this line touched during the
/// attacked round?" channel, over uniform fresh keys at the reference
/// (all-zero) base.
struct LineQuantity {
  std::uint64_t line_base = 0;
  double touch_probability = 0.0;
  double bits = 0.0;  ///< binary entropy of the indicator
};

/// The fixed-seed sampled whole-trace pass (cumulative channel: every
/// round key unknown, footprint = union over the analysis window).
struct SampledQuantity {
  std::uint64_t samples = 0;
  std::size_t classes = 0;
  double bits = 0.0;  ///< plug-in lower-bound estimate of I(K; footprint)
};

/// Quantified verdict for one target.
struct QuantifyReport {
  std::string target;
  std::string description;
  unsigned rounds_analyzed = 0;
  std::vector<RoundQuantity> rounds;

  /// Per-line breakdown of the S-Box table in `line_round` (the first
  /// attacked round with a nonzero measured leak; empty when leak-free).
  std::vector<LineQuantity> sbox_lines;
  unsigned line_round = 0;

  SampledQuantity sampled;

  /// The taint pass's per-channel upper bounds over the same window
  /// (S-Box side equals StaticReport::recoverable_bits()).
  double taint_sbox_bound = 0.0;
  double taint_perm_bound = 0.0;

  /// Declared budget copied from the target's QuantifySpec.
  double budget_sbox_bits = 0.0;
  double budget_perm_bits = 0.0;
  double budget_tolerance = 1e-6;

  [[nodiscard]] double measured_sbox_bits() const noexcept;
  [[nodiscard]] double measured_perm_bits() const noexcept;
  [[nodiscard]] double measured_total_bits() const noexcept {
    return measured_sbox_bits() + measured_perm_bits();
  }
  /// Best single observation (capacity of the richest attacked round).
  [[nodiscard]] double capacity_bits_per_observation() const noexcept;
  /// log2 of the candidate-set size one clean observation of the richest
  /// round leaves per segment, summed — what the recovery engine expects.
  [[nodiscard]] double expected_residual_bits() const noexcept;

  [[nodiscard]] bool within_taint_bound() const noexcept;
  [[nodiscard]] bool within_budget() const noexcept;
  /// The CI gate: budget respected and the taint bound never exceeded.
  [[nodiscard]] bool ok() const noexcept {
    return within_taint_bound() && within_budget();
  }

  [[nodiscard]] std::string to_text(bool verbose = false) const;
  [[nodiscard]] std::string to_json() const;
};

/// JSON array over several reports.
[[nodiscard]] std::string quantify_reports_to_json(
    const std::vector<QuantifyReport>& reports);

struct QuantifyConfig {
  unsigned rounds = 0;          ///< attacked rounds (0 = target default)
  unsigned sample_budget = 0;   ///< override QuantifySpec (0 = keep)
  std::uint64_t sample_seed = 0;  ///< override QuantifySpec (0 = keep)
  bool run_sampled = true;      ///< skip the dynamic sampled pass when false
};

/// Quantifies one target.
[[nodiscard]] QuantifyReport quantify(const AnalysisTarget& target,
                                      const QuantifyConfig& cfg = {});

/// Quantifies every built-in target (the parity bridge: the registry
/// covers each registered pipeline cipher and countermeasure variant, so
/// they are all measured automatically).
[[nodiscard]] std::vector<QuantifyReport> quantify_all(
    const QuantifyConfig& cfg = {});

}  // namespace grinch::analysis
