#include "analysis/trace_diff.h"

#include "cachesim/cache.h"
#include "common/rng.h"

namespace grinch::analysis {

std::vector<ProjectedAccess> projected_line_trace(const AnalysisTarget& target,
                                                  std::uint64_t pt_lo,
                                                  std::uint64_t pt_hi,
                                                  const Key128& key,
                                                  unsigned rounds) {
  gift::VectorTraceSink sink;
  target.run(pt_lo, pt_hi, key, rounds, &sink);

  const cachesim::Cache cache{target.cache};
  std::vector<ProjectedAccess> projected;
  projected.reserve(sink.accesses().size());
  for (const gift::TableAccess& a : sink.accesses()) {
    if (!target.observes(a.kind)) continue;
    projected.push_back(ProjectedAccess{cache.line_base(a.addr),
                                        cache.set_index(a.addr), a.round});
  }
  return projected;
}

TraceDiffResult key_pair_trace_diff(const AnalysisTarget& target,
                                    const TraceDiffConfig& cfg) {
  const unsigned rounds = cfg.rounds != 0 ? cfg.rounds : target.trace_rounds;
  Xoshiro256 rng{cfg.seed};
  TraceDiffResult result;
  result.trials = cfg.trials;

  for (unsigned trial = 0; trial < cfg.trials; ++trial) {
    const std::uint64_t pt_lo = rng.block64();
    const std::uint64_t pt_hi = rng.block64();
    const Key128 k1 = rng.key128();
    Key128 k2 = rng.key128();
    if (k2 == k1) k2 = k2 ^ Key128{0, 1};

    const std::vector<ProjectedAccess> t1 =
        projected_line_trace(target, pt_lo, pt_hi, k1, rounds);
    const std::vector<ProjectedAccess> t2 =
        projected_line_trace(target, pt_lo, pt_hi, k2, rounds);

    int diverged_round = -2;  // -2: traces equal
    unsigned diverged_at = 0;
    const std::size_t common = std::min(t1.size(), t2.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (t1[i].line != t2[i].line) {
        diverged_round = static_cast<int>(t1[i].round);
        diverged_at = static_cast<unsigned>(i);
        break;
      }
    }
    if (diverged_round == -2 && t1.size() != t2.size()) {
      diverged_round = -1;  // length mismatch past the common prefix
      diverged_at = static_cast<unsigned>(common);
    }

    if (diverged_round != -2) {
      if (result.diverged == 0) {
        result.first_trial = trial;
        result.first_access = diverged_at;
        result.first_round = diverged_round;
      }
      ++result.diverged;
    }
  }
  return result;
}

}  // namespace grinch::analysis
