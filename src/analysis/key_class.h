// Key-equivalence classes under an observable cache-line footprint.
//
// The quantitative leakage engine (quantify.h) reduces every question of
// "how much does this access pattern reveal?" to the same object: a
// partition of a small key space into classes of keys the attacker cannot
// distinguish, because they induce the same observable footprint.  For a
// deterministic victim under a fixed (attacker-known) input, the channel
// key -> footprint is noiseless, so the Shannon mutual information
// I(K; O) collapses to the entropy of the class-size distribution:
//
//     I(K; O) = H(O) = -sum_c (|c| / |K|) * log2(|c| / |K|)
//
// and the expected number of candidates surviving one observation — the
// figure the elimination engine cares about — is E[|class(K)|] =
// sum_c |c|^2 / |K|.  Chattopadhyay et al. ("Quantifying the Information
// Leak in Cache Attacks through Symbolic Execution") make the same
// reduction; here the "symbolic execution" is exact enumeration, which
// the 4-bit-per-segment structure of the GIFT family makes affordable.
//
// Two modes:
//  * partition_keys — exhaustive, for key spaces small enough to walk
//    (the <= 4 fresh key bits feeding one segment's lookup index).
//  * sample_footprint_classes — fixed-seed sampled, for joint spaces
//    (e.g. all 32 fresh bits of a GIFT-64 round, or a whole-trace
//    footprint under a full random Key128).  The plug-in entropy of the
//    sampled footprint histogram is a *lower bound* estimate of I(K; O).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace grinch::analysis {

/// Canonical observable footprint: sorted, deduplicated cache-line base
/// addresses (or any other observable tokens) one execution touches.
using Footprint = std::vector<std::uint64_t>;

/// Sorts and deduplicates in place — footprints must be canonical before
/// they are compared or hashed.
void canonicalize(Footprint& fp);

/// Plug-in Shannon entropy (bits) of a histogram: counts over `total`
/// draws.  Zero-count cells contribute nothing.
[[nodiscard]] double shannon_bits(const std::vector<std::uint64_t>& counts,
                                  std::uint64_t total);

/// Entropy of a Bernoulli(p) observable — the per-cache-line leak of the
/// binary "was this line touched?" channel.
[[nodiscard]] double binary_entropy_bits(double p);

/// Partition of the key space [0, keyspace) into observational
/// equivalence classes.
struct KeyClassPartition {
  std::vector<std::uint32_t> class_of;    ///< key value -> class id
  std::vector<std::uint32_t> class_size;  ///< class id -> member count

  [[nodiscard]] std::uint64_t keyspace() const noexcept {
    return class_of.size();
  }
  [[nodiscard]] std::size_t classes() const noexcept {
    return class_size.size();
  }
  [[nodiscard]] std::uint32_t largest_class() const noexcept;

  /// I(K; O) of the noiseless channel = entropy of the class sizes.
  [[nodiscard]] double mutual_information_bits() const;

  /// E[|class(K)|] over a uniform true key — the candidate-set size one
  /// observation leaves the recovery engine, on average.
  [[nodiscard]] double expected_class_size() const;
};

/// Exhaustive partition: `footprint(key, out)` fills `out` with the lines
/// key `key` touches; keys with identical canonical footprints share a
/// class.  Class ids are assigned in first-seen key order, so the result
/// is deterministic.
[[nodiscard]] KeyClassPartition partition_keys(
    std::uint32_t keyspace,
    const std::function<void(std::uint32_t key, Footprint& out)>& footprint);

/// Result of the fixed-seed sampled pass over a key space too large to
/// enumerate.
struct SampledClasses {
  std::uint64_t samples = 0;
  std::size_t classes = 0;  ///< distinct footprints observed
  /// Plug-in entropy of the sampled footprint histogram: a lower-bound
  /// estimate of I(K; O) (undersampling only ever hides classes).
  double bits = 0.0;
  std::uint64_t largest_class = 0;  ///< draws landing in the modal footprint
};

/// Draws `samples` footprints via `draw` (which owns its RNG, seeded by
/// the caller for determinism) and groups them.  Deterministic for a
/// fixed seed; single-threaded on purpose so thread count cannot change
/// the histogram.
[[nodiscard]] SampledClasses sample_footprint_classes(
    std::uint64_t samples, const std::function<void(Footprint& out)>& draw);

}  // namespace grinch::analysis
