#include "analysis/leakcheck.h"

#include <utility>

#include "cachesim/cache.h"

namespace grinch::analysis {

LeakReport analyze(const AnalysisTarget& target, const LeakcheckConfig& cfg) {
  LeakReport report;
  report.target = target.name;
  report.description = target.description;
  report.expected_leaky = target.expect_leaky;

  const unsigned rounds =
      cfg.analysis_rounds != 0 ? cfg.analysis_rounds : target.analysis_rounds;
  const cachesim::Cache cache{target.cache};

  // Pass 1: cumulative taint — is any observable access secret-dependent?
  report.static_pass.rounds_analyzed = rounds;
  for (const TaintedAccess& a :
       propagate_taint(target.model, rounds, KeyTaintPolicy::cumulative())) {
    if (!target.observes(a.kind)) continue;
    if (leaked_key_bits(a, target.layout, cache) > 0.0) {
      report.static_pass.leaky = true;
      break;
    }
  }

  // Pass 1b: per-round quantification in the cross-round attack model.
  for (unsigned r = 0; r < rounds; ++r) {
    RoundLeak round_leak;
    round_leak.round = r;
    for (const TaintedAccess& a :
         attacked_round_accesses(target.model, r)) {
      if (!target.observes(a.kind)) continue;
      const double bits = leaked_key_bits(a, target.layout, cache);
      if (a.kind == gift::TableAccess::Kind::kSBox) {
        round_leak.segments.push_back(
            SegmentLeak{a.segment, bits, a.index_taint});
      } else {
        round_leak.perm_bits += bits;
      }
    }
    report.static_pass.rounds.push_back(std::move(round_leak));
  }

  // Pass 2: the dynamic oracle on the real implementation.
  if (cfg.run_dynamic) {
    report.dynamic_pass = key_pair_trace_diff(target, cfg.diff);
  } else {
    // With the oracle off, report a vacuously consistent dynamic result.
    report.dynamic_pass = TraceDiffResult{};
    report.dynamic_pass.diverged = report.static_pass.leaky ? 1u : 0u;
  }
  return report;
}

std::vector<LeakReport> analyze_all(const LeakcheckConfig& cfg) {
  std::vector<LeakReport> reports;
  const std::vector<AnalysisTarget> targets = builtin_targets();
  reports.reserve(targets.size());
  for (const AnalysisTarget& target : targets) {
    reports.push_back(analyze(target, cfg));
  }
  return reports;
}

}  // namespace grinch::analysis
