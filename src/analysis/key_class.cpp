#include "analysis/key_class.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace grinch::analysis {

void canonicalize(Footprint& fp) {
  std::sort(fp.begin(), fp.end());
  fp.erase(std::unique(fp.begin(), fp.end()), fp.end());
}

double shannon_bits(const std::vector<std::uint64_t>& counts,
                    std::uint64_t total) {
  if (total == 0) return 0.0;
  double bits = 0.0;
  for (const std::uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    bits -= p * std::log2(p);
  }
  return bits;
}

double binary_entropy_bits(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

std::uint32_t KeyClassPartition::largest_class() const noexcept {
  std::uint32_t largest = 0;
  for (const std::uint32_t s : class_size) largest = std::max(largest, s);
  return largest;
}

double KeyClassPartition::mutual_information_bits() const {
  std::vector<std::uint64_t> counts(class_size.begin(), class_size.end());
  return shannon_bits(counts, keyspace());
}

double KeyClassPartition::expected_class_size() const {
  if (class_of.empty()) return 0.0;
  double sum = 0.0;
  for (const std::uint32_t s : class_size) {
    sum += static_cast<double>(s) * static_cast<double>(s);
  }
  return sum / static_cast<double>(keyspace());
}

KeyClassPartition partition_keys(
    std::uint32_t keyspace,
    const std::function<void(std::uint32_t key, Footprint& out)>& footprint) {
  KeyClassPartition part;
  part.class_of.resize(keyspace, 0);
  // std::map keeps the implementation allocation-light for the <= 16-key
  // spaces this is used on; class ids follow first-seen key order.
  std::map<Footprint, std::uint32_t> id_of;
  Footprint fp;
  for (std::uint32_t key = 0; key < keyspace; ++key) {
    fp.clear();
    footprint(key, fp);
    canonicalize(fp);
    const auto [it, inserted] =
        id_of.try_emplace(fp, static_cast<std::uint32_t>(part.class_size.size()));
    if (inserted) part.class_size.push_back(0);
    part.class_of[key] = it->second;
    ++part.class_size[it->second];
  }
  return part;
}

SampledClasses sample_footprint_classes(
    std::uint64_t samples, const std::function<void(Footprint& out)>& draw) {
  std::map<Footprint, std::uint64_t> histogram;
  Footprint fp;
  for (std::uint64_t i = 0; i < samples; ++i) {
    fp.clear();
    draw(fp);
    canonicalize(fp);
    ++histogram[fp];
  }
  SampledClasses out;
  out.samples = samples;
  out.classes = histogram.size();
  std::vector<std::uint64_t> counts;
  counts.reserve(histogram.size());
  for (const auto& [unused_fp, count] : histogram) {
    counts.push_back(count);
    out.largest_class = std::max(out.largest_class, count);
  }
  out.bits = shannon_bits(counts, samples);
  return out;
}

}  // namespace grinch::analysis
