// leakcheck pass 1 — static taint/dataflow analysis of table-based ciphers.
//
// The engine abstractly interprets a cipher's round structure over a small
// taint lattice instead of concrete bits.  Every state bit carries a taint
// set drawn from {PLAINTEXT, KEY} (empty set = PUBLIC); join is set union:
//
//       {PLAINTEXT, KEY}       "secret and chosen-input dependent"
//        |            |
//   {PLAINTEXT}     {KEY}
//        |            |
//         {}  (PUBLIC)
//
// A table lookup leaks its *index* through the cache, so the analysis
// records, for every S-Box / PermBits access the implementation would
// issue, the taint of each of the four index bits.  An implementation is
// statically leak-free when no recorded access can expose KEY taint at
// cache-line granularity (see leaked_key_bits below) — which is exactly
// the property the GRINCH attack (PAPER.md) falsifies for the table-based
// GIFT implementation and the bitsliced/packed countermeasures restore.
//
// The abstraction is sound for the SPN ciphers modelled here: SubCells
// joins the four segment-bit taints (every S-Box output bit may depend on
// every input bit), PermBits moves taint bits, and AddRoundKey joins KEY
// taint into the key-facing positions.  Constants are PUBLIC.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cachesim/cache.h"
#include "gift/permutation.h"
#include "gift/table_gift.h"

namespace grinch::analysis {

/// Taint set of one state/index bit (bitmask; join = bitwise OR).
using Taint = std::uint8_t;
inline constexpr Taint kPublic = 0;     ///< attacker-known / constant
inline constexpr Taint kPlaintext = 1;  ///< depends on the chosen input
inline constexpr Taint kKey = 2;        ///< depends on unknown key bits

/// True when `t` carries KEY taint (the only component that leaks secrets).
[[nodiscard]] constexpr bool carries_key(Taint t) noexcept {
  return (t & kKey) != 0;
}

/// Structural description of a 4-bit-segment LUT cipher, sufficient for
/// abstract interpretation.  All five registered implementations (GIFT-64,
/// GIFT-128, PRESENT-80, bitsliced GIFT, packed-S-Box GIFT) are instances.
struct CipherModel {
  std::string name;
  unsigned state_bits = 64;        ///< 64 (GIFT-64/PRESENT) or 128
  unsigned max_rounds = 28;        ///< rounds the real cipher runs
  bool key_add_before_sbox = false;  ///< PRESENT adds the round key first
  bool sbox_lookups = true;        ///< false: constant-time SubCells (ANF)
  bool perm_lookups = true;        ///< false: PermBits computed in registers
  const gift::BitPermutation* perm = nullptr;  ///< width == state_bits

  /// State-bit positions XORed with round-key bits in (0-based) round r.
  std::function<std::vector<unsigned>(unsigned round)> key_positions;

  [[nodiscard]] unsigned segments() const noexcept { return state_bits / 4; }
};

/// The models behind the built-in analysis targets.
[[nodiscard]] CipherModel gift64_table_model();
[[nodiscard]] CipherModel gift128_table_model();
[[nodiscard]] CipherModel present80_table_model();
/// Bitsliced GIFT-64: no table lookups at all.
[[nodiscard]] CipherModel gift64_bitsliced_model();
/// Packed-S-Box countermeasure: S-Box lookups remain (into one packed
/// line); PermBits is computed in registers, completing the mitigation.
[[nodiscard]] CipherModel gift64_packed_model();

/// One abstract table access: which lookup, and the taint of each of the
/// four index bits (index bit i of segment s = state bit 4s+i).
struct TaintedAccess {
  gift::TableAccess::Kind kind = gift::TableAccess::Kind::kSBox;
  unsigned round = 0;    ///< 0-based
  unsigned segment = 0;
  std::array<Taint, 4> index_taint{};

  [[nodiscard]] Taint joined() const noexcept {
    return static_cast<Taint>(index_taint[0] | index_taint[1] |
                              index_taint[2] | index_taint[3]);
  }
  [[nodiscard]] bool key_tainted() const noexcept {
    return carries_key(joined());
  }
};

/// Which AddRoundKey operations inject KEY taint.
///
/// kAll models the plain observer ("is anything here secret-dependent?").
/// kOnly models the paper's cross-round attack: round keys recovered in
/// earlier stages are attacker-known (PUBLIC), so only the *fresh* round
/// key of interest carries KEY — this is what makes the per-round leak
/// quantification come out as the paper's 2 bits per segment.
struct KeyTaintPolicy {
  enum class Mode : std::uint8_t { kAll, kOnly, kNone };
  Mode mode = Mode::kAll;
  unsigned round = 0;  ///< the tainted round for kOnly

  [[nodiscard]] static KeyTaintPolicy cumulative() noexcept { return {}; }
  [[nodiscard]] static KeyTaintPolicy fresh_only(unsigned r) noexcept {
    return {Mode::kOnly, r};
  }
};

/// Abstractly interprets `rounds` rounds of `model`, returning every table
/// access the implementation would issue with its index-bit taints.
[[nodiscard]] std::vector<TaintedAccess> propagate_taint(
    const CipherModel& model, unsigned rounds, const KeyTaintPolicy& policy);

/// Accesses of attacked (0-based) round `round` under the cross-round
/// model: the round key feeding that round's S-Box indices is the only
/// KEY-tainted one (earlier stage recoveries are PUBLIC).  For GIFT that
/// is the AddRoundKey of round-1; for PRESENT the one opening `round`.
[[nodiscard]] std::vector<TaintedAccess> attacked_round_accesses(
    const CipherModel& model, unsigned round);

/// Key bits observable from one access at cache-line granularity.
///
/// Enumerates the 16 possible index values: fixing every non-KEY index bit
/// and toggling the KEY-tainted ones, counts the distinct cache lines the
/// access can land on (layout address -> Cache::line_base / set index) and
/// returns log2 of the worst-case count.  2.0 for table GIFT at the paper
/// default (two key-facing index bits, one S-Box entry per line); 0.0 for
/// the packed S-Box (all rows share one line) — Table I's sweep falls out
/// of the same formula at intermediate line sizes.
[[nodiscard]] double leaked_key_bits(const TaintedAccess& access,
                                     const gift::TableLayout& layout,
                                     const cachesim::Cache& cache);

}  // namespace grinch::analysis
