// Registry of implementations leakcheck knows how to analyze.
//
// An AnalysisTarget pairs the *static* view of an implementation (its
// CipherModel for the taint engine, plus the table layout and cache
// geometry that decide what an attacker can observe) with a *dynamic*
// runner that executes the real code under instrumentation — so the
// trace-equivalence oracle can validate every static verdict against the
// actual access stream.  Registering a new implementation means filling
// in one of these structs (see docs/LEAKCHECK.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/taint.h"
#include "cachesim/config.h"
#include "common/key128.h"
#include "gift/table_gift.h"

namespace grinch::analysis {

/// Declared leakage budget plus the enumeration hooks the quantitative
/// engine (analysis/quantify.h) needs on top of the taint model.
///
/// The budget is the static-analysis analogue of a committed bench
/// baseline: every target declares how many bits its observable channels
/// are *supposed* to measure at (Shannon mutual information, summed over
/// the analysis window), and `leakcheck quantify` fails when the measured
/// value drifts — a countermeasure that silently weakens, or a refactor
/// that widens a table's cache footprint, trips the gate in CI.
struct QuantifySpec {
  /// Declared measured bits through the S-Box channel (the paper's
  /// channel: which S-Box rows' cache lines an encryption touches).
  double budget_sbox_bits = 0.0;
  /// Declared measured bits through the PermBits-LUT channel.
  double budget_perm_bits = 0.0;
  /// Absolute drift tolerated before the gate fails.  The measured values
  /// are sums of exact log2 terms, so the tolerance only absorbs
  /// floating-point summation error.
  double budget_tolerance = 1e-6;

  /// Keys drawn for the sampled whole-trace pass (0 disables it); the
  /// per-segment classes are enumerated exhaustively regardless.
  unsigned sample_budget = 512;
  std::uint64_t sample_seed = 0xC1A55E5;  ///< fixed seed — results are part
                                          ///< of the deterministic report

  /// Concrete 4-bit S-Box: maps a SubCells lookup index to the value that
  /// then indexes the PermBits row — the enumeration hook that lets the
  /// perm channel be quantified exactly (taint only says "all four index
  /// bits are key-dependent"; the S-Box bijection says *which* rows are
  /// reachable).  Null when the model issues no perm lookups.
  std::function<unsigned(unsigned)> sbox_value;
};

struct AnalysisTarget {
  std::string name;
  std::string description;
  bool expect_leaky = true;  ///< regression expectation enforced by tests/CI

  CipherModel model;            ///< structural view for the taint engine
  gift::TableLayout layout;     ///< where the tables live
  cachesim::CacheConfig cache;  ///< observable granularity (line size)

  /// Attacked rounds quantified by the static report.  Chosen so the
  /// summed fresh key bits cover the key (GIFT-64: rounds 2..5 of the
  /// paper = 4 x 32 bits).
  unsigned analysis_rounds = 5;

  /// Rounds each dynamic trial executes (kept small; leaks show by round 2).
  unsigned trace_rounds = 6;

  /// Runs `rounds` rounds of the real implementation, reporting table
  /// accesses to `sink`.  `pt_hi` is used only by 128-bit-block ciphers.
  std::function<void(std::uint64_t pt_lo, std::uint64_t pt_hi,
                     const Key128& key, unsigned rounds,
                     gift::TraceSink* sink)>
      run;

  /// Access kinds that are memory lookups in the modelled implementation
  /// (the packed-S-Box countermeasure computes PermBits in registers, so
  /// its kPerm events are not observable memory traffic).
  bool observe_sbox = true;
  bool observe_perm = true;

  /// Quantitative-engine hooks and the declared leakage budget
  /// (analysis/quantify.h; the CI gate compares measured bits against it).
  QuantifySpec quantify;

  [[nodiscard]] bool observes(gift::TableAccess::Kind kind) const noexcept {
    return kind == gift::TableAccess::Kind::kSBox ? observe_sbox
                                                  : observe_perm;
  }
};

/// The built-in targets: table GIFT-64 / GIFT-128 / PRESENT-80 (leaky),
/// bitsliced GIFT-64 and the packed-S-Box countermeasure (leak-free),
/// plus two instructive extras — the hardened key schedule (cache leak
/// unchanged) and the packed S-Box with LUT PermBits kept (leaky: the
/// PermBits table still betrays the state, a gap the paper's §IV-C text
/// does not mention and this analyzer makes visible).
[[nodiscard]] std::vector<AnalysisTarget> builtin_targets();

/// Finds a built-in target by name (nullptr when absent).
[[nodiscard]] const AnalysisTarget* find_target(
    const std::vector<AnalysisTarget>& targets, const std::string& name);

}  // namespace grinch::analysis
