// Registry of implementations leakcheck knows how to analyze.
//
// An AnalysisTarget pairs the *static* view of an implementation (its
// CipherModel for the taint engine, plus the table layout and cache
// geometry that decide what an attacker can observe) with a *dynamic*
// runner that executes the real code under instrumentation — so the
// trace-equivalence oracle can validate every static verdict against the
// actual access stream.  Registering a new implementation means filling
// in one of these structs (see docs/LEAKCHECK.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/taint.h"
#include "cachesim/config.h"
#include "common/key128.h"
#include "gift/table_gift.h"

namespace grinch::analysis {

struct AnalysisTarget {
  std::string name;
  std::string description;
  bool expect_leaky = true;  ///< regression expectation enforced by tests/CI

  CipherModel model;            ///< structural view for the taint engine
  gift::TableLayout layout;     ///< where the tables live
  cachesim::CacheConfig cache;  ///< observable granularity (line size)

  /// Attacked rounds quantified by the static report.  Chosen so the
  /// summed fresh key bits cover the key (GIFT-64: rounds 2..5 of the
  /// paper = 4 x 32 bits).
  unsigned analysis_rounds = 5;

  /// Rounds each dynamic trial executes (kept small; leaks show by round 2).
  unsigned trace_rounds = 6;

  /// Runs `rounds` rounds of the real implementation, reporting table
  /// accesses to `sink`.  `pt_hi` is used only by 128-bit-block ciphers.
  std::function<void(std::uint64_t pt_lo, std::uint64_t pt_hi,
                     const Key128& key, unsigned rounds,
                     gift::TraceSink* sink)>
      run;

  /// Access kinds that are memory lookups in the modelled implementation
  /// (the packed-S-Box countermeasure computes PermBits in registers, so
  /// its kPerm events are not observable memory traffic).
  bool observe_sbox = true;
  bool observe_perm = true;

  [[nodiscard]] bool observes(gift::TableAccess::Kind kind) const noexcept {
    return kind == gift::TableAccess::Kind::kSBox ? observe_sbox
                                                  : observe_perm;
  }
};

/// The built-in targets: table GIFT-64 / GIFT-128 / PRESENT-80 (leaky),
/// bitsliced GIFT-64 and the packed-S-Box countermeasure (leak-free),
/// plus two instructive extras — the hardened key schedule (cache leak
/// unchanged) and the packed S-Box with LUT PermBits kept (leaky: the
/// PermBits table still betrays the state, a gap the paper's §IV-C text
/// does not mention and this analyzer makes visible).
[[nodiscard]] std::vector<AnalysisTarget> builtin_targets();

/// Finds a built-in target by name (nullptr when absent).
[[nodiscard]] const AnalysisTarget* find_target(
    const std::vector<AnalysisTarget>& targets, const std::string& name);

}  // namespace grinch::analysis
