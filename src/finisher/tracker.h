// FinishTracker: the engine-side half of the residual-key finisher.
//
// Both recovery engines (target/recovery_engine.h, target/wide_engine.h)
// run finish mode (Config::finish_partials) through this one value type
// so their behavior stays bit-identical — the same discipline
// target/stage_state.h established for the elimination machine:
//
//  * Stage budget quotas: begin_stage() splits the remaining encryption
//    budget evenly across the stages not yet finished (the last stage
//    takes the remainder), so a saturating channel cannot starve later
//    stages of evidence entirely.
//  * Evidence accumulation: note_observation() tallies, for EVERY
//    segment and candidate, whether the candidate's predicted S-Box
//    index was present — over every consumed non-dropped observation of
//    the stage, across segment resets (unlike StageState::presence,
//    which is voted-path-only, cursor-local in crafted mode, and cleared
//    by resets).  The tally reuses the EliminationTable keep word, so
//    one observation costs kSegments table loads.
//  * ML assumption: when a stage's quota runs out unresolved,
//    assume_stage() exports the accumulated evidence, picks each
//    segment's maximum-likelihood candidate (mask-surviving, highest
//    presence, lowest index on ties) and returns the assumed StageKey so
//    the engine can keep going — later stages then accrue evidence
//    conditioned on the best available guess.
//
// After the stage loop the engine captures known pairs
// (capture_known_pairs — observed through the possibly-faulty channel,
// whose probe faults never touch the victim's encryption) and runs the
// search inline via finish_with_residual_search().  Quota exhaustion
// only ever triggers at the engines' budget checkpoints, where the RNG
// sits exactly after the consumed craft sequence — which is what keeps
// any-batch/any-width conformance intact in finish mode.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "finisher/evidence.h"
#include "finisher/finisher.h"
#include "target/candidate_mask.h"
#include "target/line_set.h"
#include "target/observation.h"
#include "target/stage_state.h"

namespace grinch::finisher {

template <typename Recovery>
class FinishTracker {
 public:
  using StageKey = typename Recovery::StageKey;

  /// Starts a stage's quota epoch: `used` encryptions are spent, the
  /// remaining budget splits evenly over the stages left.
  void begin_stage(unsigned stage, std::uint64_t used,
                   std::uint64_t max_encryptions) {
    stage_ = stage;
    const std::uint64_t left = Recovery::kStages - stage;
    const std::uint64_t remaining =
        max_encryptions > used ? max_encryptions - used : 0;
    stage_end_ = left <= 1 ? max_encryptions : used + remaining / left;
    presence_ = {};
    updates_ = 0;
  }

  /// The stage's encryption-count quota boundary: the engine assumes the
  /// stage once total_encryptions reaches it.
  [[nodiscard]] std::uint64_t stage_end() const noexcept { return stage_end_; }

  [[nodiscard]] bool any_assumed() const noexcept { return any_assumed_; }

  /// Folds one consumed, non-dropped observation into the all-segment
  /// presence tallies.
  void note_observation(
      const std::array<unsigned, Recovery::kSegments>& nibbles,
      const target::LineSet& present) {
    const auto& table = target::EliminationTable<Recovery>::instance();
    const std::uint16_t word = static_cast<std::uint16_t>(present.word());
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      const std::uint16_t keep = table.keep(word, nibbles[s]);
      for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
        presence_[s][c] += (keep >> c) & 1u;
      }
    }
    ++updates_;
  }

  /// Quota exhausted with the stage unresolved: export the evidence,
  /// record the partial contract (first assumed stage only) and return
  /// the maximum-likelihood stage key to continue with.
  [[nodiscard]] StageKey assume_stage(
      const target::StageState<Recovery>& st,
      target::RecoveryResult<Recovery>& result) {
    if (!any_assumed_) st.fill_partial(result, stage_);
    any_assumed_ = true;

    StageEvidence<Recovery> ev;
    ev.stage = stage_;
    ev.assumed = true;
    std::array<target::CandidateMask<Recovery::kCandidatesPerSegment>,
               Recovery::kSegments>
        picks{};
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      const std::uint16_t mask = st.masks[s].mask();
      ev.masks[s] = mask;
      ev.updates[s] = static_cast<std::uint32_t>(updates_);
      ev.presence[s] = presence_[s];
      unsigned best = 0;
      std::uint32_t best_presence = 0;
      bool have = false;
      for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
        if (((mask >> c) & 1u) == 0) continue;
        if (!have || presence_[s][c] > best_presence) {
          best = c;
          best_presence = presence_[s][c];
          have = true;
        }
      }
      // An empty mask cannot happen mid-stage (StageState resets it
      // full), but fall back to candidate 0 defensively.
      picks[s].set_mask(static_cast<std::uint16_t>(1u << best));
    }
    result.stage_evidence.push_back(ev);
    return Recovery::stage_key_from(picks);
  }

 private:
  unsigned stage_ = 0;
  std::uint64_t stage_end_ = 0;
  std::uint64_t updates_ = 0;
  bool any_assumed_ = false;
  std::array<std::array<std::uint32_t, Recovery::kCandidatesPerSegment>,
             Recovery::kSegments>
      presence_{};
};

/// Captures `count` exact plaintext/ciphertext pairs through the (maybe
/// faulty) observation source.  The observations themselves may be
/// corrupted or dropped — only the lazily-completed ciphertext matters,
/// and probe faults never touch the victim's encryption.  Each pair
/// costs one encryption; like the finalize verification observation it
/// may exceed the elimination budget.
template <typename Recovery>
void capture_known_pairs(
    target::ObservationSource<typename Recovery::Block>& source,
    Xoshiro256& rng, unsigned count,
    target::RecoveryResult<Recovery>& result) {
  for (unsigned i = 0; i < count; ++i) {
    const typename Recovery::Block pt = Recovery::random_block(rng);
    (void)source.observe(pt, 0);
    ++result.total_encryptions;
    result.known_pairs.push_back({pt, source.last_ciphertext()});
  }
}

/// Runs the residual search on a finish-mode partial and folds the
/// outcome back into the result (offline accounting summed, residual
/// bits refined to the searched joint space, key fields set on
/// recovery).
template <typename Recovery>
void finish_with_residual_search(target::RecoveryResult<Recovery>& result,
                                 const Options& options) {
  FinishReport<Recovery> report = finish_partial(result, options);
  result.finisher = report.stats;
  result.offline_trials += report.stats.offline_trials;
  result.residual_key_bits = report.stats.search_space_bits;
  if (report.stats.outcome == FinisherOutcome::kRecovered) {
    result.recovered_key = report.key;
    result.stage_keys = std::move(report.stage_keys);
    result.success = true;
    result.key_verified = true;
  }
}

}  // namespace grinch::finisher
