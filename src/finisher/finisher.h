// ResidualFinisher: maximum-likelihood search completing a partial
// recovery into a verified full key (docs/ROBUSTNESS.md "Residual-key
// finisher").
//
// Input: a finish-mode RecoveryResult partial — per-stage keys with the
// starved stages ML-assumed, assumed-stage presence evidence
// (finisher/evidence.h) and 1-2 exact known plaintext/ciphertext pairs.
// The finisher ranks residual key assignments by their joint
// presence-count deficit (likelihood.h), enumerates them in
// (penalty, lexicographic) order (enumerate.h), and verifies candidates
// against the known pairs via the cipher's reference implementation
// (Recovery::finisher_verify) until one matches.
//
// Robustness contract:
//  * Deterministic budget — Options::max_candidates caps candidates
//    tested this invocation; an optional wall-clock deadline and a
//    cooperative stop flag cut long searches (marked `interrupted`).
//  * Byte-identical outcome at any thread count — candidates are
//    enumerated into rank-ordered chunks; a chunk's verifications run in
//    parallel over runner::ThreadPool (work-stealing), but the winner is
//    the LOWEST-rank verified candidate and stats (candidates_tested,
//    offline_trials) are accumulated over the rank prefix up to and
//    including it, so speculative verification past the winner never
//    shows up in any reported field.
//  * Resumable — FinisherStats::frontier_rank is the next untested rank;
//    re-running with Options::start_rank = frontier_rank (and fresh
//    budget) continues exactly where a killed search stopped, and the
//    union of the two runs reports the same winner rank as one big run.
//  * Three-way outcome — kRecovered / kExhaustedBudget (frontier kept) /
//    kEvidenceInconsistent (ranked space exhausted without a verified
//    key: the truth fell outside the surviving masks, or the evidence —
//    or the pairs — are corrupt).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/key128.h"
#include "finisher/enumerate.h"
#include "finisher/evidence.h"
#include "finisher/likelihood.h"
#include "runner/thread_pool.h"
#include "target/candidate_mask.h"
#include "target/stage_state.h"

namespace grinch::finisher {

struct Options {
  /// Candidates to test in THIS invocation (resume budgets add up).
  std::uint64_t max_candidates = std::uint64_t{1} << 17;
  /// First rank to test — pass a previous run's frontier_rank to resume.
  std::uint64_t start_rank = 0;
  /// Candidates verified per parallel dispatch.  Any value yields the
  /// same reported outcome; it only trades dispatch overhead against
  /// speculative verification past the winner.
  std::size_t chunk = 64;
  /// Wall-clock deadline for this invocation; 0 disables.  A deadline
  /// that fires makes the *stopping point* time-dependent (outcome
  /// fields stay honest); the engines never set one.
  double deadline_seconds = 0.0;
  /// Optional pool for parallel verification; nullptr = serial (with
  /// early exit at the first verified candidate).
  runner::ThreadPool* pool = nullptr;
  /// Cooperative cancellation (e.g. a campaign drain-stop).
  const std::atomic<bool>* stop = nullptr;
};

template <typename Recovery>
struct FinishReport {
  FinisherStats stats;
  /// Verified master key (outcome == kRecovered only).
  Key128 key{};
  /// The winning candidate's full per-stage keys (assumed stages
  /// replaced by the verified assignment).
  std::vector<typename Recovery::StageKey> stage_keys;
};

template <typename Recovery>
class ResidualFinisher {
 public:
  using Block = typename Recovery::Block;
  using StageKey = typename Recovery::StageKey;

  ResidualFinisher(const target::RecoveryResult<Recovery>& partial,
                   const Options& options)
      : partial_(partial), opt_(options) {}

  [[nodiscard]] FinishReport<Recovery> run() {
    const auto t0 = std::chrono::steady_clock::now();
    FinishReport<Recovery> rep;
    FinisherStats& stats = rep.stats;
    stats.frontier_rank = opt_.start_rank;

    slots_ = build_slots(partial_);
    for (const Slot<Recovery>& slot : slots_) {
      if (slot.segment == 0) groups_.push_back(slot.stage);
    }
    std::vector<std::vector<std::uint32_t>> deltas;
    deltas.reserve(slots_.size());
    for (const Slot<Recovery>& slot : slots_) deltas.push_back(slot.deltas);
    PenaltyEnumerator enumerator{std::move(deltas)};
    stats.search_space_bits = enumerator.space_bits();

    pts_.clear();
    cts_.clear();
    for (const KnownPair<Recovery>& pair : partial_.known_pairs) {
      pts_.push_back(pair.plaintext);
      cts_.push_back(pair.ciphertext);
    }
    if (slots_.empty() || pts_.empty() ||
        partial_.stage_keys.size() != Recovery::kStages) {
      stats.outcome = FinisherOutcome::kEvidenceInconsistent;
      stats.wall_seconds = elapsed(t0);
      return rep;
    }
    if (enumerator.skip(opt_.start_rank) < opt_.start_rank) {
      // Resume point beyond the space: a previous run already exhausted
      // it without a verified key.
      stats.outcome = FinisherOutcome::kEvidenceInconsistent;
      stats.wall_seconds = elapsed(t0);
      return rep;
    }

    stats.outcome = FinisherOutcome::kExhaustedBudget;
    const std::size_t n_slots = slots_.size();
    const std::size_t chunk = std::max<std::size_t>(opt_.chunk, 1);
    std::uint64_t rank = opt_.start_rank;  // rank of the next candidate
    std::uint64_t tested = 0;
    std::vector<std::uint32_t> ranks;
    std::vector<std::uint32_t> chunk_ranks;  // n * n_slots, row-major
    struct Verdict {
      bool ok = false;
      Key128 key{};
      std::uint64_t offline = 0;
    };
    std::vector<Verdict> verdicts;

    while (tested < opt_.max_candidates) {
      if ((opt_.stop != nullptr &&
           opt_.stop->load(std::memory_order_relaxed)) ||
          (opt_.deadline_seconds > 0.0 &&
           elapsed(t0) >= opt_.deadline_seconds)) {
        stats.interrupted = true;
        break;
      }
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk, opt_.max_candidates - tested));
      chunk_ranks.clear();
      std::size_t n = 0;
      while (n < want && enumerator.next(ranks)) {
        chunk_ranks.insert(chunk_ranks.end(), ranks.begin(), ranks.end());
        ++n;
      }
      if (n == 0) {
        // Ranked space exhausted with no candidate left to test.
        stats.outcome = FinisherOutcome::kEvidenceInconsistent;
        break;
      }
      verdicts.assign(n, Verdict{});
      const auto verify_one = [&](std::size_t i) {
        const std::vector<StageKey> keys = assemble(chunk_ranks, i, n_slots);
        Verdict& v = verdicts[i];
        v.ok = Recovery::finisher_verify(keys, pts_, cts_, v.key, v.offline);
      };
      if (opt_.pool != nullptr && n > 1) {
        opt_.pool->parallel_for(n, verify_one);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          verify_one(i);
          if (verdicts[i].ok) break;  // serial early exit; tail untested
        }
      }
      // Deterministic scan in rank order: only the prefix through the
      // lowest-rank winner enters the reported stats.
      bool won = false;
      for (std::size_t i = 0; i < n; ++i) {
        ++tested;
        stats.offline_trials += verdicts[i].offline;
        if (verdicts[i].ok) {
          stats.outcome = FinisherOutcome::kRecovered;
          stats.rank = rank + i;
          rep.key = verdicts[i].key;
          rep.stage_keys = assemble(chunk_ranks, i, n_slots);
          rank += i + 1;
          won = true;
          break;
        }
      }
      if (won) break;
      rank += n;
      if (n < want) {  // enumerator dried up inside this chunk
        stats.outcome = FinisherOutcome::kEvidenceInconsistent;
        break;
      }
    }

    stats.candidates_tested = tested;
    stats.frontier_rank = rank;
    stats.wall_seconds = elapsed(t0);
    return rep;
  }

 private:
  [[nodiscard]] static double elapsed(
      std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }

  /// Full per-stage keys for chunk candidate i: the partial's keys with
  /// every assumed stage rebuilt from the assignment's slot picks.
  [[nodiscard]] std::vector<StageKey> assemble(
      const std::vector<std::uint32_t>& chunk_ranks, std::size_t i,
      std::size_t n_slots) const {
    std::vector<StageKey> keys = partial_.stage_keys;
    const std::uint32_t* row = chunk_ranks.data() + i * n_slots;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      std::array<target::CandidateMask<Recovery::kCandidatesPerSegment>,
                 Recovery::kSegments>
          picks{};
      const std::size_t base = g * Recovery::kSegments;
      for (unsigned s = 0; s < Recovery::kSegments; ++s) {
        const Slot<Recovery>& slot = slots_[base + s];
        picks[s].set_mask(static_cast<std::uint16_t>(
            1u << slot.candidates[row[base + s]]));
      }
      keys[groups_[g]] = Recovery::stage_key_from(picks);
    }
    return keys;
  }

  const target::RecoveryResult<Recovery>& partial_;
  Options opt_;
  std::vector<Slot<Recovery>> slots_;
  /// Assumed stage index per group of kSegments consecutive slots.
  std::vector<unsigned> groups_;
  std::vector<Block> pts_;
  std::vector<Block> cts_;
};

/// Runs the maximum-likelihood residual search on a finish-mode partial.
template <typename Recovery>
[[nodiscard]] FinishReport<Recovery> finish_partial(
    const target::RecoveryResult<Recovery>& partial, const Options& options) {
  ResidualFinisher<Recovery> finisher{partial, options};
  return finisher.run();
}

}  // namespace grinch::finisher
