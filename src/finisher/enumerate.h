// Maximum-likelihood-order enumeration of the residual key space.
//
// The finisher models each unresolved (stage, segment) as a *slot* whose
// surviving candidates carry a non-negative integer penalty (its
// presence-count deficit versus the slot's best candidate — see
// likelihood.h).  A residual key assignment picks one candidate per slot;
// its joint penalty is the sum of the slot penalties.  PenaltyEnumerator
// yields every assignment exactly once, ordered by
//
//   (total penalty ascending, rank vector lexicographically ascending),
//
// i.e. most-likely-first with a deterministic, thread-count-independent
// tie order.  This is the classic "sorted sums" frontier walk specialised
// to small per-slot alphabets: enumerate one penalty level at a time with
// a depth-first scan whose per-node rank loop breaks at the first
// overshooting delta (deltas are sorted ascending per slot), recording
// `prefix + delta` as a candidate for the next level.  Infeasible
// branches are pruned with a suffix-max bound.
//
// Completeness: for the minimum achievable total T greater than the
// current level L, walk the lexicographically smallest assignment A
// achieving T.  Its first node not visited by the level-L scan fails
// either because the rank loop broke at an overshoot r' <= A's rank
// (recording prefix + delta(r') in (L, T]) or because A's rank itself
// overshoots (same record); the absorb prune can never skip A's rank
// while it is affordable, because A's own suffix achieves T - prefix <=
// suffix_max.  So every level records a next-level candidate <= T, levels
// strictly increase through a finite value set, and no achievable total
// is ever skipped.
//
// Memory is O(slots); state is a rank prefix + running penalty, which
// makes `skip(n)` (resume support) a plain fast-forward.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace grinch::finisher {

class PenaltyEnumerator {
 public:
  /// `slot_deltas[j]` holds slot j's candidate penalties sorted
  /// ascending (rank order); slot_deltas[j][0] is the slot's
  /// maximum-likelihood choice.  An empty slot makes the space empty.
  explicit PenaltyEnumerator(std::vector<std::vector<std::uint32_t>> deltas)
      : deltas_(std::move(deltas)) {
    suffix_max_.assign(deltas_.size() + 1, 0);
    for (std::size_t j = deltas_.size(); j-- > 0;) {
      if (deltas_[j].empty()) {
        exhausted_ = true;  // no candidate survives in this slot
        return;
      }
      suffix_max_[j] = suffix_max_[j + 1] + deltas_[j].back();
    }
    choice_.reserve(deltas_.size());
  }

  /// Advances to the next assignment in (penalty, lexicographic) order.
  /// Fills `out` with one rank per slot and returns true, or returns
  /// false once the space is exhausted.
  bool next(std::vector<std::uint32_t>& out) {
    if (exhausted_) return false;
    if (deltas_.empty()) {  // single empty assignment
      exhausted_ = true;
      out.clear();
      return true;
    }
    std::uint64_t r = 0;
    if (emitted_) {  // backtrack off the just-emitted full assignment
      r = pop() + 1;
      emitted_ = false;
    }
    for (;;) {
      const std::size_t depth = choice_.size();
      const std::vector<std::uint32_t>& d = deltas_[depth];
      const std::uint64_t remaining = level_ - prefix_;
      bool descended = false;
      for (; r < d.size(); ++r) {
        const std::uint64_t dr = d[r];
        if (dr > remaining) {
          // First overshoot (deltas ascend): the smallest total above
          // the current level reachable by raising this slot.
          next_level_ = std::min(next_level_, prefix_ + dr);
          break;
        }
        if (remaining - dr > suffix_max_[depth + 1]) continue;  // unabsorbable
        choice_.push_back(static_cast<std::uint32_t>(r));
        prefix_ += dr;
        descended = true;
        break;
      }
      if (descended) {
        if (choice_.size() == deltas_.size()) {
          // suffix_max_[n] == 0 forced an exact hit at the last slot.
          out = choice_;
          emitted_ = true;
          return true;
        }
        r = 0;
        continue;
      }
      if (choice_.empty()) {
        // Level fully enumerated; advance to the next achievable one.
        if (next_level_ == kNoLevel) {
          exhausted_ = true;
          return false;
        }
        level_ = next_level_;
        next_level_ = kNoLevel;
        r = 0;
        continue;
      }
      r = pop() + 1;
    }
  }

  /// Fast-forwards past `n` assignments (resume support); returns the
  /// number actually skipped (< n only when the space ran out).
  std::uint64_t skip(std::uint64_t n) {
    std::vector<std::uint32_t> scratch;
    std::uint64_t skipped = 0;
    while (skipped < n && next(scratch)) ++skipped;
    return skipped;
  }

  /// Joint penalty of the most recently emitted assignment (the current
  /// enumeration level).
  [[nodiscard]] std::uint64_t penalty() const noexcept { return level_; }

  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

  /// log2 of the assignment-space size.
  [[nodiscard]] double space_bits() const {
    double bits = 0.0;
    for (const std::vector<std::uint32_t>& d : deltas_) {
      bits += std::log2(static_cast<double>(d.empty() ? 1 : d.size()));
    }
    return bits;
  }

 private:
  static constexpr std::uint64_t kNoLevel =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t pop() {
    const std::uint32_t rank = choice_.back();
    prefix_ -= deltas_[choice_.size() - 1][rank];
    choice_.pop_back();
    return rank;
  }

  std::vector<std::vector<std::uint32_t>> deltas_;
  std::vector<std::uint64_t> suffix_max_;
  std::vector<std::uint32_t> choice_;
  std::uint64_t prefix_ = 0;
  std::uint64_t level_ = 0;
  std::uint64_t next_level_ = kNoLevel;
  bool emitted_ = false;
  bool exhausted_ = false;
};

}  // namespace grinch::finisher
