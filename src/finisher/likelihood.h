// Likelihood model: turning presence evidence into ranked slots.
//
// Under the fault model (docs/ROBUSTNESS.md) the true candidate's S-Box
// line is present in a consumed observation with probability
// ~(1 - false_absent), while an impostor's line is present only when a
// colliding access or a false-present flip covers it.  Every candidate
// of one segment shares the segment's update count, so the presence
// *counts* compare directly: the maximum-likelihood candidate is the one
// with the highest count, and a candidate's log-likelihood gap versus
// the best is monotone in its presence-count deficit
//
//   delta(c) = max_c' presence[c'] - presence[c].
//
// build_slots() converts the assumed-stage evidence of a finish-mode
// partial (finisher/evidence.h) into one Slot per (stage, segment) with
// candidates sorted most-likely-first; PenaltyEnumerator then walks
// assignments by ascending total deficit.  Using the raw deficit as the
// penalty keeps the order integral and exactly reproducible — no
// floating-point likelihood is ever compared.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "finisher/evidence.h"
#include "target/stage_state.h"

namespace grinch::finisher {

/// One unresolved (stage, segment) choice point of the residual space.
template <typename Recovery>
struct Slot {
  unsigned stage = 0;
  unsigned segment = 0;
  /// Surviving candidates, most-likely first (presence descending,
  /// candidate index ascending on ties); position = enumeration rank.
  std::vector<std::uint8_t> candidates;
  /// Presence-count deficit versus candidates[0], ascending.
  std::vector<std::uint32_t> deltas;
};

/// Builds the ranked slots from a partial's assumed-stage evidence, in
/// deterministic order: evidence entries in export order, segments
/// ascending within each.  Slots with an empty surviving mask come out
/// empty (the enumerator then reports an empty space —
/// evidence_inconsistent).
template <typename Recovery>
[[nodiscard]] std::vector<Slot<Recovery>> build_slots(
    const target::RecoveryResult<Recovery>& partial) {
  std::vector<Slot<Recovery>> slots;
  for (const StageEvidence<Recovery>& ev : partial.stage_evidence) {
    if (!ev.assumed) continue;
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      Slot<Recovery> slot;
      slot.stage = ev.stage;
      slot.segment = s;
      std::vector<std::pair<std::uint32_t, unsigned>> order;
      order.reserve(Recovery::kCandidatesPerSegment);
      for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
        if ((ev.masks[s] >> c) & 1u) order.emplace_back(ev.presence[s][c], c);
      }
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      slot.candidates.reserve(order.size());
      slot.deltas.reserve(order.size());
      for (const auto& [presence, c] : order) {
        slot.candidates.push_back(static_cast<std::uint8_t>(c));
        slot.deltas.push_back(order.front().first - presence);
      }
      slots.push_back(std::move(slot));
    }
  }
  return slots;
}

}  // namespace grinch::finisher
