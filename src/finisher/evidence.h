// Evidence types shared by the recovery engines and the residual-key
// finisher (src/finisher/finisher.h, docs/ROBUSTNESS.md "Residual-key
// finisher").
//
// A saturating fault channel starves elimination: the budget runs out
// with candidate masks still (nearly) full, so surviving_masks alone
// carries almost no information.  What the channel *does* leave behind
// is presence evidence — the true candidate's S-Box line is present in
// (almost) every non-dropped observation, an impostor's only when
// another access happens to cover it.  The engines therefore export,
// per stage, the per-candidate presence counts accumulated over every
// consumed observation (StageEvidence); the finisher ranks residual
// keys by how well they explain those counts and verifies the ranked
// stream against known plaintext/ciphertext pairs (KnownPair) captured
// through the same channel (probe faults never touch the victim's
// encryption, so the pairs are exact).
#pragma once

#include <array>
#include <cstdint>

namespace grinch::finisher {

/// Per-stage presence evidence exported into RecoveryResult.
///
/// Two kinds of entries share the vector:
///  * `assumed == false`: an honest snapshot of the failed stage's
///    StageState at budget exhaustion (voted-path tallies; cursor-local
///    in crafted mode, cleared by segment resets — an *epoch*, not the
///    whole stage).
///  * `assumed == true`: finish-mode evidence accumulated by
///    FinishTracker over every consumed non-dropped observation of the
///    stage, across resets and for all segments — the counts the
///    finisher's likelihood model consumes.
template <typename Recovery>
struct StageEvidence {
  unsigned stage = 0;
  /// True when the engine ML-assumed this stage's key to keep going
  /// (Config::finish_partials); the finisher searches exactly the
  /// assumed stages.
  bool assumed = false;
  /// Candidate masks surviving at the end of the stage (full masks when
  /// elimination starved).
  std::array<std::uint16_t, Recovery::kSegments> masks{};
  /// Per-segment count of informative (non-dropped) observations folded
  /// into `presence` — the denominator of the presence frequency.
  std::array<std::uint32_t, Recovery::kSegments> updates{};
  /// presence[s][c]: observations whose present-line word contained
  /// candidate c's predicted S-Box index for segment s.
  std::array<std::array<std::uint32_t, Recovery::kCandidatesPerSegment>,
             Recovery::kSegments>
      presence{};
};

/// One exact plaintext/ciphertext pair for candidate verification.
template <typename Recovery>
struct KnownPair {
  typename Recovery::Block plaintext{};
  typename Recovery::Block ciphertext{};

  friend bool operator==(const KnownPair&, const KnownPair&) = default;
};

/// Three-way finisher outcome (plus "never ran").
enum class FinisherOutcome : std::uint8_t {
  kNotRun = 0,
  /// A candidate verified against every known pair; the full key is in
  /// RecoveryResult::recovered_key.
  kRecovered = 1,
  /// The candidate budget (or deadline / cooperative stop) ran out with
  /// candidates left; FinisherStats::frontier_rank is the resume point.
  kExhaustedBudget = 2,
  /// The ranked space was exhausted without a verified key: the true key
  /// falls outside the surviving masks (or the evidence itself is
  /// corrupt).
  kEvidenceInconsistent = 3,
};

[[nodiscard]] constexpr const char* finisher_outcome_name(
    FinisherOutcome outcome) noexcept {
  switch (outcome) {
    case FinisherOutcome::kRecovered:
      return "recovered";
    case FinisherOutcome::kExhaustedBudget:
      return "exhausted_budget";
    case FinisherOutcome::kEvidenceInconsistent:
      return "evidence_inconsistent";
    case FinisherOutcome::kNotRun:
      break;
  }
  return "not_run";
}

/// Finisher statistics carried in RecoveryResult and serialized into
/// campaign JSONL / `grinch --json` reports.
///
/// Determinism contract: every field except `wall_seconds` and
/// `interrupted` is byte-identical at any thread count and across
/// resume boundaries (candidates past the verified winner's rank are
/// verified speculatively in parallel but never counted).  Wall time
/// never enters campaign records or conformance comparisons.
struct FinisherStats {
  FinisherOutcome outcome = FinisherOutcome::kNotRun;
  /// Candidates tested this run, counted in rank order up to and
  /// including the winner (or the frontier on exhaustion).
  std::uint64_t candidates_tested = 0;
  /// Rank (0-based, maximum-likelihood order) of the verified candidate;
  /// meaningful only when outcome == kRecovered.
  std::uint64_t rank = 0;
  /// Next untested rank — pass as Options::start_rank to resume an
  /// exhausted search exactly where it stopped.
  std::uint64_t frontier_rank = 0;
  /// Reference-cipher trials spent verifying candidates (PRESENT's
  /// 2^16 low-bit loop dominates); summed into
  /// RecoveryResult::offline_trials.
  std::uint64_t offline_trials = 0;
  /// log2 of the joint residual space the finisher actually searches
  /// (product of per-slot surviving-candidate counts over assumed
  /// stages).
  double search_space_bits = 0.0;
  /// Wall-clock spent in this finisher invocation.  NOT deterministic;
  /// reported in `grinch --json` and bench `*_seconds` metrics only.
  double wall_seconds = 0.0;
  /// True when a wall-clock deadline or cooperative stop cut the search
  /// short of its candidate budget.  NOT deterministic when a deadline
  /// is set (the engines never set one).
  bool interrupted = false;
};

}  // namespace grinch::finisher
