// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// The campaign layer uses it twice: checkpoint files carry a CRC over
// their payload so a torn or bit-rotted checkpoint is rejected instead of
// resumed from, and the checkpoint records a CRC of the flushed JSONL
// prefix so resume can prove the result file on disk is exactly the
// prefix the checkpoint describes before appending to it.
//
// Incremental: feed chunks through update() with the running value
// (start from kInit, finish with finalize()); crc32() is the one-shot
// convenience.  Matches zlib's crc32() for the same bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace grinch {

class Crc32 {
 public:
  static constexpr std::uint32_t kInit = 0xFFFFFFFFu;

  /// Folds `size` bytes into the running (pre-finalize) value.
  [[nodiscard]] static std::uint32_t update(std::uint32_t crc,
                                            const void* data,
                                            std::size_t size) noexcept;

  [[nodiscard]] static constexpr std::uint32_t finalize(
      std::uint32_t crc) noexcept {
    return crc ^ 0xFFFFFFFFu;
  }
};

/// One-shot CRC-32 of a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// One-shot CRC-32 of a string's bytes.
[[nodiscard]] inline std::uint32_t crc32(std::string_view s) noexcept {
  return crc32(s.data(), s.size());
}

}  // namespace grinch
