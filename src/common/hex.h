// Hex encoding/decoding used by tests, examples and experiment logs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace grinch {

/// Encodes `v` as `digits` lowercase hex characters (most significant first).
std::string to_hex_u64(std::uint64_t v, unsigned digits = 16);

/// Parses up to 16 hex digits into a u64. Returns nullopt on bad input.
std::optional<std::uint64_t> parse_hex_u64(const std::string& s);

/// Encodes a byte vector, index 0 printed first.
std::string to_hex_bytes(const std::vector<std::uint8_t>& bytes);

/// Decodes a hex string (even length) into bytes. Returns nullopt on error.
std::optional<std::vector<std::uint8_t>> parse_hex_bytes(const std::string& s);

}  // namespace grinch
