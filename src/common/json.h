// Minimal JSON document builder + reader for machine-readable I/O.
//
// The bench harnesses (bench/bench_util.h) serialize their results,
// configuration and wall-clock into `BENCH_<name>.json` so the perf
// trajectory of the repo is tracked mechanically (tools/run_bench.sh
// aggregates them; CI uploads the aggregate per PR).  The campaign layer
// (src/campaign/) added the read direction: CampaignSpec files are parsed
// with json::parse and result records are streamed as JSONL via
// dump_compact().
//
// Determinism: dump()/dump_compact() emit keys in insertion order and
// format doubles with a fixed shortest-roundtrip format, so two runs that
// computed the same values serialize to identical bytes (the determinism
// suite compares serialized documents across thread counts, and the
// campaign resume contract depends on record bytes being reproducible).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grinch::json {

/// A JSON value: object / array / string / number / bool / null.
class Value {
 public:
  Value() noexcept : kind_(Kind::kNull) {}
  Value(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}          // NOLINT
  Value(double d) noexcept : kind_(Kind::kDouble), double_(d) {}    // NOLINT
  Value(std::int64_t i) noexcept : kind_(Kind::kInt), int_(i) {}    // NOLINT
  Value(std::uint64_t u) noexcept : kind_(Kind::kUint), uint_(u) {} // NOLINT
  Value(int i) noexcept : Value(static_cast<std::int64_t>(i)) {}    // NOLINT
  Value(unsigned u) noexcept                                        // NOLINT
      : Value(static_cast<std::uint64_t>(u)) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {} // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                   // NOLINT

  [[nodiscard]] static Value object();
  [[nodiscard]] static Value array();

  /// Object member set (insertion-ordered; re-setting a key overwrites in
  /// place).  The value must be (or become) an object.
  Value& set(const std::string& key, Value v);

  /// Array append.  The value must be (or become) an array.
  Value& push(Value v);

  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  // --- read accessors (the parse direction) ---

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const noexcept;

  /// Members in insertion order (empty unless an object).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const noexcept {
    return members_;
  }

  /// Elements in order (empty unless an array).
  [[nodiscard]] const std::vector<Value>& elements() const noexcept {
    return elements_;
  }

  /// Value reads with a fallback on kind mismatch.  Numbers convert
  /// across int/uint/double (u64 reads reject negatives, both integer
  /// reads reject non-integral doubles).
  [[nodiscard]] std::string as_string(const std::string& fallback = "") const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept;
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept;
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept;

  /// Serializes with 2-space indentation and a trailing newline at the
  /// top level.
  [[nodiscard]] std::string dump() const;

  /// Single-line serialization (no indentation, no trailing newline) —
  /// the JSONL record format of the campaign result stream.
  [[nodiscard]] std::string dump_compact() const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kObject, kArray
  };

  void write(std::string& out, unsigned depth) const;
  void write_compact(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Value>> members_;  ///< object
  std::vector<Value> elements_;                         ///< array
};

/// Escapes a string for embedding in a JSON document (no quotes added).
[[nodiscard]] std::string escape(const std::string& s);

/// Parses one JSON document (the subset dump() emits: objects, arrays,
/// strings with the escape() escapes plus \/ \b \f \uXXXX, numbers,
/// booleans, null).  Trailing non-whitespace, trailing commas, comments
/// and duplicate keys are rejected.  On failure returns nullopt and, when
/// `error` is non-null, a one-line "offset N: reason" diagnostic.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

}  // namespace grinch::json
