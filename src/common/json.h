// Minimal JSON document builder for machine-readable bench output.
//
// The bench harnesses (bench/bench_util.h) serialize their results,
// configuration and wall-clock into `BENCH_<name>.json` so the perf
// trajectory of the repo is tracked mechanically (tools/run_bench.sh
// aggregates them; CI uploads the aggregate per PR).  Writing only —
// nothing in the repo needs to parse JSON back.
//
// Determinism: dump() emits keys in insertion order and formats doubles
// with a fixed shortest-roundtrip format, so two runs that computed the
// same values serialize to identical bytes (the determinism suite
// compares serialized documents across thread counts).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace grinch::json {

/// A JSON value: object / array / string / number / bool / null.
class Value {
 public:
  Value() noexcept : kind_(Kind::kNull) {}
  Value(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}          // NOLINT
  Value(double d) noexcept : kind_(Kind::kDouble), double_(d) {}    // NOLINT
  Value(std::int64_t i) noexcept : kind_(Kind::kInt), int_(i) {}    // NOLINT
  Value(std::uint64_t u) noexcept : kind_(Kind::kUint), uint_(u) {} // NOLINT
  Value(int i) noexcept : Value(static_cast<std::int64_t>(i)) {}    // NOLINT
  Value(unsigned u) noexcept                                        // NOLINT
      : Value(static_cast<std::uint64_t>(u)) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {} // NOLINT
  Value(const char* s) : Value(std::string(s)) {}                   // NOLINT

  [[nodiscard]] static Value object();
  [[nodiscard]] static Value array();

  /// Object member set (insertion-ordered; re-setting a key overwrites in
  /// place).  The value must be (or become) an object.
  Value& set(const std::string& key, Value v);

  /// Array append.  The value must be (or become) an array.
  Value& push(Value v);

  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Serializes with 2-space indentation and a trailing newline at the
  /// top level.
  [[nodiscard]] std::string dump() const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kObject, kArray
  };

  void write(std::string& out, unsigned depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Value>> members_;  ///< object
  std::vector<Value> elements_;                         ///< array
};

/// Escapes a string for embedding in a JSON document (no quotes added).
[[nodiscard]] std::string escape(const std::string& s);

}  // namespace grinch::json
