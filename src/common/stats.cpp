#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace grinch {

void SampleStats::add(double v) { samples_.push_back(v); }

double SampleStats::mean() const {
  assert(!samples_.empty());
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::stddev() const {
  assert(!samples_.empty());
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleStats::median() const { return percentile(0.5); }

double SampleStats::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::percentile(double p) const {
  assert(!samples_.empty());
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto i = static_cast<std::size_t>(idx);
  return sorted[std::min(i, sorted.size() - 1)];
}

std::string EffortCell::render() const {
  if (all_dropped()) {
    // Built via append to dodge GCC 12's -Wrestrict false positive on
    // operator+ (PR 105651).
    std::string text(">");
    text += std::to_string(cutoff_);
    return text;
  }
  if (stats_.empty()) return "-";
  auto text = std::to_string(static_cast<std::uint64_t>(
      std::llround(stats_.mean())));
  if (dropouts_ > 0) text += "*";  // some trials hit the cutoff
  return text;
}

}  // namespace grinch
