// Small statistics accumulators for experiment harnesses.
//
// Fig. 3 / Table I report per-configuration attack effort over many random
// keys; the harnesses accumulate samples here and report mean / median /
// min / max plus drop-out counts (the paper drops runs above 1M
// encryptions as impractical).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace grinch {

/// Accumulates scalar samples; cheap summary statistics on demand.
class SampleStats {
 public:
  void add(double v);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Arithmetic mean. Precondition: !empty().
  [[nodiscard]] double mean() const;
  /// Population standard deviation. Precondition: !empty().
  [[nodiscard]] double stddev() const;
  /// Median (lower of the two middles for even counts). Precondition: !empty().
  [[nodiscard]] double median() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// p in [0,1]; nearest-rank percentile. Precondition: !empty().
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  std::vector<double> samples_;
};

/// Experiment cell: successful samples plus drop-outs (> cutoff trials).
/// Mirrors Table I's ">1M" cells.
class EffortCell {
 public:
  explicit EffortCell(std::uint64_t cutoff) noexcept : cutoff_(cutoff) {}

  /// Records a trial that finished after `encryptions` encryptions.
  void add_success(std::uint64_t encryptions) {
    stats_.add(static_cast<double>(encryptions));
  }
  /// Records a trial abandoned at the cutoff.
  void add_dropout() noexcept { ++dropouts_; }

  [[nodiscard]] std::uint64_t cutoff() const noexcept { return cutoff_; }
  [[nodiscard]] std::size_t dropouts() const noexcept { return dropouts_; }
  [[nodiscard]] std::size_t successes() const noexcept {
    return stats_.count();
  }
  [[nodiscard]] bool all_dropped() const noexcept {
    return stats_.empty() && dropouts_ > 0;
  }
  [[nodiscard]] const SampleStats& stats() const noexcept { return stats_; }

  /// Paper-style cell text: mean effort, or ">cutoff" when all trials drop.
  [[nodiscard]] std::string render() const;

 private:
  std::uint64_t cutoff_;
  std::size_t dropouts_ = 0;
  SampleStats stats_;
};

}  // namespace grinch
