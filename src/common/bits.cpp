// bits.h is header-only; this translation unit only anchors the target.
#include "common/bits.h"
