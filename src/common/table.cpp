#include "common/table.h"

#include <cassert>
#include <sstream>

namespace grinch {
namespace {

std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  out.resize(width < s.size() ? s.size() : width, ' ');
  return out;
}

}  // namespace

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  assert(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto rule = [&] {
    for (std::size_t w : widths) out << "+" << std::string(w + 2, '-');
    out << "+\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      out << "| " << pad(cell, widths[i]) << " ";
    }
    out << "|\n";
  };
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  return out.str();
}

}  // namespace grinch
