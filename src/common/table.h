// ASCII table rendering for bench binaries.
//
// Every experiment harness prints its result in the same row/column shape
// as the paper's table or figure series, via this small formatter.
#pragma once

#include <string>
#include <vector>

namespace grinch {

/// Column-aligned ASCII table with a header row and an optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header column count (asserted).
  void add_row(std::vector<std::string> row);

  /// Renders the table with box-drawing rules; ends with a newline.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  // Structured access for machine-readable output (bench --json).
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grinch
