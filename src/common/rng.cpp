#include "common/rng.h"

namespace grinch {
namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
  // All-zero state is the one forbidden state; SplitMix64 cannot produce
  // four consecutive zeros, but guard anyway for belt and braces.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ull;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace grinch
