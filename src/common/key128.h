// 128-bit key value type shared by GIFT and PRESENT-128.
//
// GIFT's specification numbers key bits k127..k0 and views the key as
// eight 16-bit words W7..W0 with W0 = k15..k0.  Key128 stores the value
// as two 64-bit halves and exposes both views plus per-bit access, which
// the attack code uses when reverse-engineering individual key bits.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace grinch {

/// Immutable-ish 128-bit key with spec-friendly accessors.
struct Key128 {
  std::uint64_t hi = 0;  ///< bits 127..64
  std::uint64_t lo = 0;  ///< bits 63..0

  constexpr Key128() = default;
  constexpr Key128(std::uint64_t hi_bits, std::uint64_t lo_bits) noexcept
      : hi(hi_bits), lo(lo_bits) {}

  friend constexpr auto operator<=>(const Key128&, const Key128&) = default;

  /// Returns key bit `pos` (0..127, 0 = LSB = k0).
  [[nodiscard]] constexpr unsigned bit(unsigned pos) const noexcept {
    return pos < 64 ? static_cast<unsigned>((lo >> pos) & 1u)
                    : static_cast<unsigned>((hi >> (pos - 64)) & 1u);
  }

  /// Returns a copy with key bit `pos` set to `value`.
  [[nodiscard]] constexpr Key128 with_bit(unsigned pos,
                                          unsigned value) const noexcept {
    Key128 k = *this;
    if (pos < 64) {
      const std::uint64_t m = std::uint64_t{1} << pos;
      k.lo = value ? (k.lo | m) : (k.lo & ~m);
    } else {
      const std::uint64_t m = std::uint64_t{1} << (pos - 64);
      k.hi = value ? (k.hi | m) : (k.hi & ~m);
    }
    return k;
  }

  /// Returns 16-bit key word Wi (i = 0..7, W0 = k15..k0).
  [[nodiscard]] constexpr std::uint16_t word16(unsigned i) const noexcept {
    const unsigned sh = 16u * (i & 3u);
    return static_cast<std::uint16_t>(((i < 4) ? lo : hi) >> sh);
  }

  /// Returns a copy with 16-bit word Wi replaced.
  [[nodiscard]] constexpr Key128 with_word16(unsigned i,
                                             std::uint16_t w) const noexcept {
    Key128 k = *this;
    const unsigned sh = 16u * (i & 3u);
    const std::uint64_t mask = ~(std::uint64_t{0xFFFF} << sh);
    if (i < 4)
      k.lo = (k.lo & mask) | (static_cast<std::uint64_t>(w) << sh);
    else
      k.hi = (k.hi & mask) | (static_cast<std::uint64_t>(w) << sh);
    return k;
  }

  /// Returns 32-bit key word Vi (i = 0..3, V0 = k31..k0).
  [[nodiscard]] constexpr std::uint32_t word32(unsigned i) const noexcept {
    const unsigned sh = 32u * (i & 1u);
    return static_cast<std::uint32_t>(((i < 2) ? lo : hi) >> sh);
  }

  /// XOR of two keys, used by avalanche/property tests.
  [[nodiscard]] constexpr Key128 operator^(const Key128& o) const noexcept {
    return Key128{hi ^ o.hi, lo ^ o.lo};
  }

  /// Spec-style key rotation by 32 bits to the right (k31..k0 wrap to top).
  [[nodiscard]] constexpr Key128 rotr32() const noexcept {
    Key128 k;
    k.lo = (lo >> 32) | (hi << 32);
    k.hi = (hi >> 32) | (lo << 32);
    return k;
  }

  /// Big-endian hex string "k127..k0" (32 hex digits), e.g. for logs.
  [[nodiscard]] std::string to_hex() const;

  /// Parses 32 hex digits (most-significant first). Returns false on error.
  static bool from_hex(const std::string& hex, Key128& out);

  /// Byte view, index 0 = least-significant byte (k7..k0).
  [[nodiscard]] constexpr std::array<std::uint8_t, 16> to_bytes_le()
      const noexcept {
    std::array<std::uint8_t, 16> b{};
    for (unsigned i = 0; i < 8; ++i) {
      b[i] = static_cast<std::uint8_t>(lo >> (8 * i));
      b[8 + i] = static_cast<std::uint8_t>(hi >> (8 * i));
    }
    return b;
  }
};

}  // namespace grinch
