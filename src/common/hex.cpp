#include "common/hex.h"

#include "common/key128.h"

namespace grinch {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex_u64(std::uint64_t v, unsigned digits) {
  std::string out(digits, '0');
  for (unsigned i = 0; i < digits; ++i) {
    out[digits - 1 - i] = kDigits[(v >> (4 * i)) & 0xF];
  }
  return out;
}

std::optional<std::uint64_t> parse_hex_u64(const std::string& s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    const int d = hex_value(c);
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::string to_hex_bytes(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> parse_hex_bytes(const std::string& s) {
  if (s.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int h = hex_value(s[i]);
    const int l = hex_value(s[i + 1]);
    if (h < 0 || l < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((h << 4) | l));
  }
  return out;
}

std::string Key128::to_hex() const {
  return to_hex_u64(hi, 16) + to_hex_u64(lo, 16);
}

bool Key128::from_hex(const std::string& hex, Key128& out) {
  if (hex.size() != 32) return false;
  const auto hi = parse_hex_u64(hex.substr(0, 16));
  const auto lo = parse_hex_u64(hex.substr(16, 16));
  if (!hi || !lo) return false;
  out = Key128{*hi, *lo};
  return true;
}

}  // namespace grinch
