#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grinch::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value& Value::set(const std::string& key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  elements_.push_back(std::move(v));
  return *this;
}

namespace {

void indent(std::string& out, unsigned depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string format_double(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  // Shortest representation that round-trips; integral doubles print
  // without an exponent for readability.
  char buf[40];
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.1f", d);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  return buf;
}

}  // namespace

void Value::write(std::string& out, unsigned depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kUint: out += std::to_string(uint_); return;
    case Kind::kDouble: out += format_double(double_); return;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += "\": ";
        members_[i].second.write(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += '}';
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        indent(out, depth + 1);
        elements_[i].write(out, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += ']';
      return;
    }
  }
}

void Value::write_compact(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kUint: out += std::to_string(uint_); return;
    case Kind::kDouble: out += format_double(double_); return;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      return;
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        out += '"';
        out += escape(members_[i].first);
        out += "\":";
        members_[i].second.write_compact(out);
      }
      out += '}';
      return;
    }
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i != 0) out += ',';
        elements_[i].write_compact(out);
      }
      out += ']';
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

std::string Value::dump_compact() const {
  std::string out;
  write_compact(out);
  return out;
}

const Value* Value::get(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::as_string(const std::string& fallback) const {
  return kind_ == Kind::kString ? string_ : fallback;
}

std::uint64_t Value::as_u64(std::uint64_t fallback) const noexcept {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt:
      return int_ >= 0 ? static_cast<std::uint64_t>(int_) : fallback;
    case Kind::kDouble:
      return (double_ >= 0 && double_ == std::floor(double_) &&
              double_ <= 1.8446744073709552e19)
                 ? static_cast<std::uint64_t>(double_)
                 : fallback;
    default: return fallback;
  }
}

double Value::as_double(double fallback) const noexcept {
  switch (kind_) {
    case Kind::kDouble: return double_;
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    default: return fallback;
  }
}

bool Value::as_bool(bool fallback) const noexcept {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

namespace {

/// Recursive-descent parser over the subset dump() writes.
class Parser {
 public:
  explicit Parser(std::string_view text) noexcept : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        v.reset();
        fail("trailing characters after document");
      }
    }
    if (!v && error != nullptr) {
      *error = "offset " + std::to_string(error_pos_) + ": " + error_;
    }
    return v;
  }

 private:
  static constexpr unsigned kMaxDepth = 64;  ///< nesting bound (no UB recursion)

  void fail(const char* reason) {
    if (error_.empty()) {
      error_ = reason;
      error_pos_ = pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> value() {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      --depth_;
      return std::nullopt;
    }
    skip_ws();
    std::optional<Value> out;
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
    } else if (text_[pos_] == '{') {
      out = object();
    } else if (text_[pos_] == '[') {
      out = array();
    } else if (text_[pos_] == '"') {
      std::string s;
      if (string(s)) out = Value{std::move(s)};
    } else if (literal("true")) {
      out = Value{true};
    } else if (literal("false")) {
      out = Value{false};
    } else if (literal("null")) {
      out = Value{};
    } else {
      out = number();
    }
    --depth_;
    return out;
  }

  std::optional<Value> object() {
    ++pos_;  // '{'
    Value obj = Value::object();
    if (eat('}')) return obj;
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string(key)) {
        fail("expected object key");
        return std::nullopt;
      }
      if (obj.get(key) != nullptr) {
        fail("duplicate object key");
        return std::nullopt;
      }
      if (!eat(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Value> v = value();
      if (!v) return std::nullopt;
      obj.set(key, std::move(*v));
      if (eat(',')) continue;
      if (eat('}')) return obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Value> array() {
    ++pos_;  // '['
    Value arr = Value::array();
    if (eat(']')) return arr;
    for (;;) {
      std::optional<Value> v = value();
      if (!v) return std::nullopt;
      arr.push(std::move(*v));
      if (eat(',')) continue;
      if (eat(']')) return arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) break;
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (unsigned i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
              return false;
            }
          }
          // UTF-8 encode (escape() only emits < 0x20, but accept the BMP;
          // surrogate pairs are out of scope for this subset).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown string escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  std::optional<Value> number() {
    const std::size_t start = pos_;
    const bool negative = pos_ < text_.size() && text_[pos_] == '-';
    if (negative) ++pos_;
    bool integral = true;
    std::size_t digits = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++digits;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
      } else {
        break;
      }
      ++pos_;
    }
    if (digits == 0) {
      pos_ = start;
      fail("expected a value");
      return std::nullopt;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    // JSON forbids leading zeros ("01"); "0" and "0.5" stay legal.
    const std::size_t first_digit = negative ? 1 : 0;
    if (token.size() > first_digit + 1 && token[first_digit] == '0' &&
        token[first_digit + 1] >= '0' && token[first_digit + 1] <= '9') {
      pos_ = start;
      fail("leading zero in number");
      return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    if (integral) {
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return Value{static_cast<std::int64_t>(v)};
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return Value{static_cast<std::uint64_t>(v)};
        }
      }
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
      return std::nullopt;
    }
    return Value{d};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned depth_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser{text}.run(error);
}

}  // namespace grinch::json
