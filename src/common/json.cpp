#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace grinch::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value& Value::set(const std::string& key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  elements_.push_back(std::move(v));
  return *this;
}

namespace {

void indent(std::string& out, unsigned depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string format_double(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  // Shortest representation that round-trips; integral doubles print
  // without an exponent for readability.
  char buf[40];
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.1f", d);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  return buf;
}

}  // namespace

void Value::write(std::string& out, unsigned depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kUint: out += std::to_string(uint_); return;
    case Kind::kDouble: out += format_double(double_); return;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      return;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += "\": ";
        members_[i].second.write(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += '}';
      return;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        indent(out, depth + 1);
        elements_[i].write(out, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += ']';
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

}  // namespace grinch::json
