// Deterministic pseudo-random number generation for experiments.
//
// Every stochastic component of the reproduction (plaintext crafting,
// replacement-policy randomness, scheduler jitter, key sampling) draws
// from an explicitly seeded Xoshiro256** instance, so every table and
// figure in EXPERIMENTS.md can be regenerated bit-for-bit.
#pragma once

#include <cstdint>

#include "common/key128.h"

namespace grinch {

/// SplitMix64 — used to expand a single u64 seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 state bits from a single u64 via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Unbiased uniform draw in [0, bound). Precondition: bound > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform 4-bit segment value (plaintext nibble randomisation).
  unsigned nibble() noexcept { return static_cast<unsigned>(next() & 0xF); }

  /// Single fair bit.
  unsigned coin() noexcept { return static_cast<unsigned>(next() & 1); }

  /// Uniform 64-bit plaintext block.
  std::uint64_t block64() noexcept { return next(); }

  /// Uniform 128-bit key.
  Key128 key128() noexcept { return Key128{next(), next()}; }

  /// Splits off an independent generator (for per-trial streams).
  Xoshiro256 split() noexcept { return Xoshiro256{next()}; }

 private:
  std::uint64_t s_[4];
};

}  // namespace grinch
