// Bit-manipulation helpers shared across the GRINCH libraries.
//
// GIFT and PRESENT are bit-sliced SPN ciphers: their specifications are
// written in terms of individual state-bit positions, 4-bit segments
// ("nibbles") and rotations of 16/32-bit key words.  These helpers give
// those operations names so the cipher code reads like the spec.
#pragma once

#include <cstdint>
#include <type_traits>

namespace grinch {

/// Returns bit `pos` (0 = LSB) of `v` as 0 or 1.
template <typename T>
constexpr unsigned bit(T v, unsigned pos) noexcept {
  static_assert(std::is_unsigned_v<T>, "bit() requires an unsigned type");
  return static_cast<unsigned>((v >> pos) & T{1});
}

/// Returns `v` with bit `pos` forced to `value` (0 or 1).
template <typename T>
constexpr T with_bit(T v, unsigned pos, unsigned value) noexcept {
  static_assert(std::is_unsigned_v<T>, "with_bit() requires an unsigned type");
  const T mask = T{1} << pos;
  return value ? (v | mask) : (v & static_cast<T>(~mask));
}

/// Returns `v` with bit `pos` flipped.
template <typename T>
constexpr T flip_bit(T v, unsigned pos) noexcept {
  static_assert(std::is_unsigned_v<T>, "flip_bit() requires an unsigned type");
  return v ^ (T{1} << pos);
}

/// Right-rotate of an `n`-bit value stored in the low bits of `v`.
/// Used by the GIFT key schedule (16-bit words rotated by 2 and 12).
constexpr std::uint32_t rotr(std::uint32_t v, unsigned r, unsigned n) noexcept {
  const std::uint32_t mask = (n >= 32) ? 0xFFFFFFFFu : ((1u << n) - 1u);
  v &= mask;
  r %= n;
  if (r == 0) return v;
  return ((v >> r) | (v << (n - r))) & mask;
}

/// Left-rotate of an `n`-bit value stored in the low bits of `v`.
constexpr std::uint32_t rotl(std::uint32_t v, unsigned r, unsigned n) noexcept {
  r %= n;
  return rotr(v, n - r == n ? 0 : n - r, n);
}

/// Right-rotate a full 64-bit word.
constexpr std::uint64_t rotr64(std::uint64_t v, unsigned r) noexcept {
  r &= 63u;
  if (r == 0) return v;
  return (v >> r) | (v << (64u - r));
}

/// Extracts 4-bit segment `i` (segment 0 = bits 3..0) of a 64-bit state.
constexpr unsigned nibble(std::uint64_t state, unsigned i) noexcept {
  return static_cast<unsigned>((state >> (4u * i)) & 0xFu);
}

/// Returns `state` with 4-bit segment `i` replaced by `value & 0xF`.
constexpr std::uint64_t with_nibble(std::uint64_t state, unsigned i,
                                    unsigned value) noexcept {
  const unsigned sh = 4u * i;
  const std::uint64_t cleared = state & ~(std::uint64_t{0xF} << sh);
  return cleared | (static_cast<std::uint64_t>(value & 0xFu) << sh);
}

/// Number of set bits.
template <typename T>
constexpr unsigned popcount(T v) noexcept {
  static_assert(std::is_unsigned_v<T>, "popcount() requires an unsigned type");
  unsigned c = 0;
  while (v) {
    v &= static_cast<T>(v - 1);
    ++c;
  }
  return c;
}

/// True when `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_pow2(v).
constexpr unsigned log2_pow2(std::uint64_t v) noexcept {
  unsigned l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

}  // namespace grinch
