// Table-based (leaky) PRESENT-80 implementation.
//
// Extension target: demonstrates that the GRINCH observation pipeline
// (instrumented LUT cipher -> cache simulation -> probe) generalises to
// PRESENT, whose S-Box is likewise a 16-entry table.  Reuses the GIFT
// trace-sink machinery so platforms and probers work unchanged.
#pragma once

#include <cstdint>

#include "common/key128.h"
#include "gift/table_gift.h"
#include "target/table_layout.h"

namespace grinch::present {

/// Leaky LUT implementation of PRESENT-80 emitting gift::TableAccess
/// events (kind kSBox for sBoxLayer, kPerm for the pLayer masks).  The
/// table placement is the cipher-neutral target::TableLayout.
class TablePresent80 {
 public:
  explicit TablePresent80(
      const target::TableLayout& layout = target::TableLayout{});

  [[nodiscard]] const target::TableLayout& layout() const noexcept {
    return layout_;
  }

  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      gift::TraceSink* sink = nullptr) const;

  [[nodiscard]] std::uint64_t encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             gift::TraceSink* sink) const;

 private:
  target::TableLayout layout_;
  std::uint8_t sbox_table_[16];
  std::uint64_t perm_table_[16][16];
};

}  // namespace grinch::present
