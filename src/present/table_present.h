// Table-based (leaky) PRESENT-80 implementation.
//
// Extension target: demonstrates that the GRINCH observation pipeline
// (instrumented LUT cipher -> cache simulation -> probe) generalises to
// PRESENT, whose S-Box is likewise a 16-entry table.  Reuses the GIFT
// trace-sink machinery so platforms and probers work unchanged.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "gift/table_gift.h"
#include "present/present.h"
#include "target/table_layout.h"

namespace grinch::present {

/// Leaky LUT implementation of PRESENT-80 emitting gift::TableAccess
/// events (kind kSBox for sBoxLayer, kPerm for the pLayer masks).  The
/// table placement is the cipher-neutral target::TableLayout.
class TablePresent80 {
 public:
  explicit TablePresent80(
      const target::TableLayout& layout = target::TableLayout{});

  [[nodiscard]] const target::TableLayout& layout() const noexcept {
    return layout_;
  }

  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      gift::TraceSink* sink = nullptr) const;

  [[nodiscard]] std::uint64_t encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             gift::TraceSink* sink) const;

  /// All 32 PRESENT round keys (index r = key of round r; index 31 = the
  /// final whitening key).  The observation hot path expands them once
  /// per victim instead of per encryption.
  using Schedule = std::vector<std::uint64_t>;
  [[nodiscard]] static Schedule make_schedule(const Key128& key);

  /// encrypt_rounds with a precomputed schedule (schedule.size() == 32):
  /// the partial-round fast path — the emitted trace is the exact prefix
  /// of the full-round trace, and the returned state matches the full
  /// encryption once rounds >= Present80 rounds (whitening applied).
  [[nodiscard]] std::uint64_t encrypt_with_schedule(
      std::uint64_t plaintext, std::span<const std::uint64_t> schedule,
      unsigned rounds, gift::TraceSink* sink = nullptr) const;

  /// Fully static sink (any class with the TraceSink callback shape, no
  /// inheritance required): round loop and callbacks inline into one
  /// function — the wide lockstep path's zero-dispatch entry point.
  /// TraceSink* callers keep resolving to the non-template overload.
  template <typename Sink>
  [[nodiscard]] std::uint64_t encrypt_with_schedule(
      std::uint64_t plaintext, std::span<const std::uint64_t> rks,
      unsigned rounds, Sink* sink) const {
    assert(rks.size() > Present80::kRounds);
    std::uint64_t state = plaintext;
    for (unsigned r = 0; r < rounds && r < Present80::kRounds; ++r) {
      if (sink) sink->on_round_begin(r);
      state ^= rks[r];

      std::uint64_t substituted = 0;
      for (unsigned s = 0; s < 16; ++s) {
        const auto v = static_cast<unsigned>((state >> (4 * s)) & 0xF);
        if (sink) {
          sink->on_access(gift::TableAccess{sbox_addr_[v],
                                            gift::TableAccess::Kind::kSBox,
                                            static_cast<std::uint8_t>(r),
                                            static_cast<std::uint8_t>(s),
                                            static_cast<std::uint8_t>(v)});
        }
        substituted |= static_cast<std::uint64_t>(sbox_table_[v]) << (4 * s);
      }

      std::uint64_t permuted = 0;
      for (unsigned s = 0; s < 16; ++s) {
        const auto v = static_cast<unsigned>((substituted >> (4 * s)) & 0xF);
        if (sink) {
          sink->on_access(gift::TableAccess{layout_.perm_row_addr(s, v),
                                            gift::TableAccess::Kind::kPerm,
                                            static_cast<std::uint8_t>(r),
                                            static_cast<std::uint8_t>(s),
                                            static_cast<std::uint8_t>(v)});
        }
        permuted |= perm_table_[s][v];
      }
      state = permuted;
      if (sink) sink->on_round_end(r);
    }
    if (rounds >= Present80::kRounds) state ^= rks[Present80::kRounds];
    return state;
  }

 private:
  target::TableLayout layout_;
  std::uint8_t sbox_table_[16];
  std::uint64_t sbox_addr_[16];  // = layout_.sbox_row_addr(v), hoisting its
                                 // division off the round loop
  std::uint64_t perm_table_[16][16];
};

}  // namespace grinch::present
