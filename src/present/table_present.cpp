#include "present/table_present.h"

#include <cassert>

#include "present/present.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::present {

/// Key schedule identical to Present80's (see present.cpp); duplicated
/// round-key extraction kept private there, so recompute here.
TablePresent80::Schedule TablePresent80::make_schedule(const Key128& key) {
  std::uint16_t hi = static_cast<std::uint16_t>(key.hi & 0xFFFF);
  std::uint64_t lo = key.lo;
  std::vector<std::uint64_t> rks;
  rks.reserve(32);
  for (unsigned round = 1; round <= 32; ++round) {
    rks.push_back((static_cast<std::uint64_t>(hi) << 48) | (lo >> 16));
    const std::uint64_t new_lo = (lo >> 19) |
                                 (static_cast<std::uint64_t>(hi) << 45) |
                                 (lo << 61);
    const auto new_hi = static_cast<std::uint16_t>((lo >> 3) & 0xFFFF);
    lo = new_lo;
    hi = new_hi;
    const unsigned top = (hi >> 12) & 0xF;
    hi = static_cast<std::uint16_t>((hi & 0x0FFF) |
                                    (gift::present_sbox().apply(top) << 12));
    lo ^= static_cast<std::uint64_t>(round) << 15;
  }
  return rks;
}

TablePresent80::TablePresent80(const target::TableLayout& layout)
    : layout_(layout) {
  for (unsigned v = 0; v < 16; ++v) {
    sbox_table_[v] = static_cast<std::uint8_t>(gift::present_sbox().apply(v));
    sbox_addr_[v] = layout_.sbox_row_addr(v);
  }
  for (unsigned s = 0; s < 16; ++s)
    for (unsigned v = 0; v < 16; ++v)
      perm_table_[s][v] = gift::present_permutation().apply64(
          static_cast<std::uint64_t>(v) << (4 * s));
}

std::uint64_t TablePresent80::encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             gift::TraceSink* sink) const {
  return encrypt_with_schedule(plaintext, make_schedule(key), rounds, sink);
}

std::uint64_t TablePresent80::encrypt_with_schedule(
    std::uint64_t plaintext, std::span<const std::uint64_t> rks,
    unsigned rounds, gift::TraceSink* sink) const {
  return encrypt_with_schedule<gift::TraceSink>(plaintext, rks, rounds, sink);
}

std::uint64_t TablePresent80::encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      gift::TraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Present80::kRounds, sink);
}

}  // namespace grinch::present
