#include "present/table_present.h"

#include <cassert>

#include "present/present.h"
#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::present {

/// Key schedule identical to Present80's (see present.cpp); duplicated
/// round-key extraction kept private there, so recompute here.
TablePresent80::Schedule TablePresent80::make_schedule(const Key128& key) {
  std::uint16_t hi = static_cast<std::uint16_t>(key.hi & 0xFFFF);
  std::uint64_t lo = key.lo;
  std::vector<std::uint64_t> rks;
  rks.reserve(32);
  for (unsigned round = 1; round <= 32; ++round) {
    rks.push_back((static_cast<std::uint64_t>(hi) << 48) | (lo >> 16));
    const std::uint64_t new_lo = (lo >> 19) |
                                 (static_cast<std::uint64_t>(hi) << 45) |
                                 (lo << 61);
    const auto new_hi = static_cast<std::uint16_t>((lo >> 3) & 0xFFFF);
    lo = new_lo;
    hi = new_hi;
    const unsigned top = (hi >> 12) & 0xF;
    hi = static_cast<std::uint16_t>((hi & 0x0FFF) |
                                    (gift::present_sbox().apply(top) << 12));
    lo ^= static_cast<std::uint64_t>(round) << 15;
  }
  return rks;
}

TablePresent80::TablePresent80(const target::TableLayout& layout)
    : layout_(layout) {
  for (unsigned v = 0; v < 16; ++v)
    sbox_table_[v] = static_cast<std::uint8_t>(gift::present_sbox().apply(v));
  for (unsigned s = 0; s < 16; ++s)
    for (unsigned v = 0; v < 16; ++v)
      perm_table_[s][v] = gift::present_permutation().apply64(
          static_cast<std::uint64_t>(v) << (4 * s));
}

std::uint64_t TablePresent80::encrypt_rounds(std::uint64_t plaintext,
                                             const Key128& key,
                                             unsigned rounds,
                                             gift::TraceSink* sink) const {
  return encrypt_with_schedule(plaintext, make_schedule(key), rounds, sink);
}

std::uint64_t TablePresent80::encrypt_with_schedule(
    std::uint64_t plaintext, std::span<const std::uint64_t> rks,
    unsigned rounds, gift::TraceSink* sink) const {
  assert(rks.size() > Present80::kRounds);
  std::uint64_t state = plaintext;
  for (unsigned r = 0; r < rounds && r < Present80::kRounds; ++r) {
    if (sink) sink->on_round_begin(r);
    state ^= rks[r];

    std::uint64_t substituted = 0;
    for (unsigned s = 0; s < 16; ++s) {
      const auto v = static_cast<unsigned>((state >> (4 * s)) & 0xF);
      if (sink) {
        sink->on_access(gift::TableAccess{layout_.sbox_row_addr(v),
                                          gift::TableAccess::Kind::kSBox,
                                          static_cast<std::uint8_t>(r),
                                          static_cast<std::uint8_t>(s),
                                          static_cast<std::uint8_t>(v)});
      }
      substituted |= static_cast<std::uint64_t>(sbox_table_[v]) << (4 * s);
    }

    std::uint64_t permuted = 0;
    for (unsigned s = 0; s < 16; ++s) {
      const auto v = static_cast<unsigned>((substituted >> (4 * s)) & 0xF);
      if (sink) {
        sink->on_access(gift::TableAccess{layout_.perm_row_addr(s, v),
                                          gift::TableAccess::Kind::kPerm,
                                          static_cast<std::uint8_t>(r),
                                          static_cast<std::uint8_t>(s),
                                          static_cast<std::uint8_t>(v)});
      }
      permuted |= perm_table_[s][v];
    }
    state = permuted;
    if (sink) sink->on_round_end(r);
  }
  if (rounds >= Present80::kRounds) state ^= rks[Present80::kRounds];
  return state;
}

std::uint64_t TablePresent80::encrypt(std::uint64_t plaintext,
                                      const Key128& key,
                                      gift::TraceSink* sink) const {
  return encrypt_rounds(plaintext, key, Present80::kRounds, sink);
}

}  // namespace grinch::present
