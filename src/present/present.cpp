#include "present/present.h"

#include <array>
#include <vector>

#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::present {
namespace {

using gift::present_permutation;
using gift::present_sbox;

std::uint64_t sbox_layer(std::uint64_t state) {
  return present_sbox().apply_state64(state);
}

std::uint64_t inv_sbox_layer(std::uint64_t state) {
  return present_sbox().invert_state64(state);
}

std::uint64_t p_layer(std::uint64_t state) {
  return present_permutation().apply64(state);
}

std::uint64_t inv_p_layer(std::uint64_t state) {
  return present_permutation().invert64(state);
}

/// 80-bit key register held in (hi: bits 79..64, lo: bits 63..0).
struct Key80 {
  std::uint16_t hi = 0;
  std::uint64_t lo = 0;
};

/// Round keys for all 32 AddRoundKey steps of PRESENT-80.
std::vector<std::uint64_t> expand80(const Key128& key) {
  Key80 k{static_cast<std::uint16_t>(key.hi & 0xFFFF), key.lo};
  std::vector<std::uint64_t> rks;
  rks.reserve(32);
  for (unsigned round = 1; round <= 32; ++round) {
    // Round key = leftmost 64 bits, i.e. bits 79..16 of the register.
    rks.push_back((static_cast<std::uint64_t>(k.hi) << 48) | (k.lo >> 16));
    // 1) rotate the 80-bit register left by 61.
    const std::uint64_t full_lo = k.lo;
    const std::uint64_t full_hi = k.hi;  // 16 significant bits
    // Compose the 80-bit value as (hi:16, lo:64); left rotate by 61 ==
    // right rotate by 19.
    const std::uint64_t new_lo =
        (full_lo >> 19) | (full_hi << 45) | (full_lo << 61);
    const std::uint64_t new_hi = (full_lo >> 3) & 0xFFFF;
    k.lo = new_lo;
    k.hi = static_cast<std::uint16_t>(new_hi);
    // 2) S-Box on the top 4 bits (79..76).
    const unsigned top = (k.hi >> 12) & 0xF;
    k.hi = static_cast<std::uint16_t>(
        (k.hi & 0x0FFF) | (present_sbox().apply(top) << 12));
    // 3) XOR round counter into bits 19..15.
    const std::uint64_t ctr = static_cast<std::uint64_t>(round) << 15;
    k.lo ^= ctr;
  }
  return rks;
}

/// Round keys for all 32 AddRoundKey steps of PRESENT-128.
std::vector<std::uint64_t> expand128(const Key128& key) {
  std::uint64_t hi = key.hi, lo = key.lo;
  std::vector<std::uint64_t> rks;
  rks.reserve(32);
  for (unsigned round = 1; round <= 32; ++round) {
    rks.push_back(hi);  // leftmost 64 bits
    // 1) rotate the 128-bit register left by 61.
    const std::uint64_t nhi = (hi << 61) | (lo >> 3);
    const std::uint64_t nlo = (lo << 61) | (hi >> 3);
    hi = nhi;
    lo = nlo;
    // 2) S-Box on the top 8 bits (two nibbles).
    const unsigned n1 = static_cast<unsigned>(hi >> 60) & 0xF;
    const unsigned n2 = static_cast<unsigned>(hi >> 56) & 0xF;
    hi = (hi & 0x00FFFFFFFFFFFFFFull) |
         (static_cast<std::uint64_t>(present_sbox().apply(n1)) << 60) |
         (static_cast<std::uint64_t>(present_sbox().apply(n2)) << 56);
    // 3) XOR round counter into bits 66..62.
    hi ^= static_cast<std::uint64_t>(round) >> 2;          // bits 66..64
    lo ^= static_cast<std::uint64_t>(round & 0x3) << 62;   // bits 63..62
  }
  return rks;
}

std::uint64_t run_encrypt(std::uint64_t state,
                          const std::vector<std::uint64_t>& rks) {
  for (unsigned r = 0; r < 31; ++r) {
    state ^= rks[r];
    state = sbox_layer(state);
    state = p_layer(state);
  }
  return state ^ rks[31];
}

std::uint64_t run_decrypt(std::uint64_t state,
                          const std::vector<std::uint64_t>& rks) {
  state ^= rks[31];
  for (unsigned r = 31; r-- > 0;) {
    state = inv_p_layer(state);
    state = inv_sbox_layer(state);
    state ^= rks[r];
  }
  return state;
}

}  // namespace

std::uint64_t Present80::encrypt(std::uint64_t plaintext, const Key128& key) {
  return run_encrypt(plaintext, expand80(key));
}

std::uint64_t Present80::decrypt(std::uint64_t ciphertext, const Key128& key) {
  return run_decrypt(ciphertext, expand80(key));
}

std::uint64_t Present128::encrypt(std::uint64_t plaintext, const Key128& key) {
  return run_encrypt(plaintext, expand128(key));
}

std::uint64_t Present128::decrypt(std::uint64_t ciphertext, const Key128& key) {
  return run_decrypt(ciphertext, expand128(key));
}

}  // namespace grinch::present
