// PRESENT block cipher (Bogdanov et al., CHES 2007).
//
// PRESENT is GIFT's direct ancestor (the GRINCH paper positions GIFT as
// "a small PRESENT") and is part of ISO/IEC 29192-2.  It is included as
// an extension attack target and as a cross-check for the shared S-Box /
// bit-permutation substrates: like table-based GIFT, a table-based
// PRESENT leaks its S-Box indices through the cache.
//
// 64-bit block, 31 rounds, 80- or 128-bit key.  Verified against the
// CHES 2007 test vectors in tests/present/present_test.cpp.
#pragma once

#include <cstdint>

#include "common/key128.h"

namespace grinch::present {

/// PRESENT with an 80-bit key (stored in the low 80 bits of a Key128).
class Present80 {
 public:
  static constexpr unsigned kRounds = 31;

  [[nodiscard]] static std::uint64_t encrypt(std::uint64_t plaintext,
                                             const Key128& key);
  [[nodiscard]] static std::uint64_t decrypt(std::uint64_t ciphertext,
                                             const Key128& key);
};

/// PRESENT with a 128-bit key.
class Present128 {
 public:
  static constexpr unsigned kRounds = 31;

  [[nodiscard]] static std::uint64_t encrypt(std::uint64_t plaintext,
                                             const Key128& key);
  [[nodiscard]] static std::uint64_t decrypt(std::uint64_t ciphertext,
                                             const Key128& key);
};

}  // namespace grinch::present
