// GRINCH attack hooks for GIFT-128 (our extension; the paper attacks
// GIFT-64).
//
// GIFT-128 is the variant actually used by GIFT-COFB and most GIFT-based
// NIST LWC candidates, so demonstrating the attack there closes the loop
// on the paper's motivation.  Structurally everything carries over:
//
//  * round 1 is key-free, so the attacker knows the full pre-key state of
//    round 2;
//  * each of the 32 segments receives two round-key bits — V_i on state
//    bit 4i+1 and U_i on bit 4i+2 (one position higher than GIFT-64);
//  * the permutation preserves i mod 4, so the pinned source bits are
//    always the bit-1 / bit-2 outputs of two distinct S-Boxes;
//  * round constants only touch bit-3 positions — never the key-facing
//    bits;
//  * GIFT-128 consumes 64 key bits per round, so TWO stages recover the
//    whole 128-bit key (vs. four for GIFT-64).
//
// The candidate encoding is c = (u << 1) | v with index = n XOR (c << 1):
// the key pair sits one bit higher inside the nibble than in GIFT-64.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "gift/gift128.h"
#include "gift/key_schedule.h"
#include "target/candidate_mask.h"
#include "target/gift128_traits.h"
#include "target/observation.h"
#include "target/recovery_engine.h"

namespace grinch::target {

/// Algorithm 1 for GIFT-128: the two source S-Box output bits feeding the
/// key-facing positions 4s+1 / 4s+2 of target segment `s` (0..31).
struct TargetBits128 {
  unsigned segment = 0;
  unsigned bit_a = 0;  ///< feeds 4s+1 (V_s); bit_a % 4 == 1
  unsigned bit_b = 0;  ///< feeds 4s+2 (U_s); bit_b % 4 == 2
  unsigned seg_a = 0;
  unsigned seg_b = 0;
  std::vector<unsigned> list_a;
  std::vector<unsigned> list_b;
};

[[nodiscard]] TargetBits128 set_target_bits128(unsigned segment);

/// Pre-key nibbles of the monitored round (round `stage`+1's S-Box
/// indices minus the key XOR); needs exact round keys 0..stage-1.
[[nodiscard]] std::array<unsigned, 32> pre_key_nibbles128(
    gift::State128 plaintext,
    std::span<const gift::RoundKey128> known_round_keys, unsigned stage);

/// Algorithm 2 for GIFT-128 + the Step-5 inversion to a plaintext.
class PlaintextCrafter128 {
 public:
  explicit PlaintextCrafter128(Xoshiro256& rng) : rng_(&rng) {}

  [[nodiscard]] gift::State128 craft_state(const TargetBits128& target);
  [[nodiscard]] gift::State128 craft_plaintext(
      const TargetBits128& target,
      std::span<const gift::RoundKey128> known_round_keys, unsigned stage);

 private:
  Xoshiro256* rng_;
};

/// Assembles the GIFT-128 master key from the two recovered round keys.
[[nodiscard]] Key128 assemble_master_key128(
    std::span<const gift::RoundKey128> round_keys);

/// Attack hooks driving KeyRecoveryEngine<Gift128Recovery>: two stages of
/// crafted-plaintext elimination recover 64 key bits each.
struct Gift128Recovery : Gift128Traits {
  using StageKey = gift::RoundKey128;

  static constexpr unsigned kStages = 2;
  static constexpr unsigned kCandidatesPerSegment = 4;
  static constexpr bool kUpdateAllSegments = false;
  static constexpr std::uint64_t kDefaultSeed = 0x128A77;

  class Crafter {
   public:
    explicit Crafter(Xoshiro256& rng) : inner_(rng) {
      for (unsigned s = 0; s < 32; ++s) targets_[s] = set_target_bits128(s);
    }
    [[nodiscard]] gift::State128 craft(
        unsigned segment, const std::vector<gift::RoundKey128>& recovered,
        unsigned stage) {
      return inner_.craft_plaintext(targets_[segment], recovered, stage);
    }

   private:
    PlaintextCrafter128 inner_;
    std::array<TargetBits128, 32> targets_{};
  };

  static std::array<unsigned, 32> pre_key_nibbles(
      gift::State128 plaintext,
      const std::vector<gift::RoundKey128>& known_round_keys, unsigned stage) {
    return pre_key_nibbles128(plaintext, known_round_keys, stage);
  }

  /// index = n XOR (c << 1): the key pair occupies nibble bits 1..2.
  static unsigned candidate_index(unsigned nibble, unsigned c) noexcept {
    return (nibble ^ (c << 1)) & 0xF;
  }

  static gift::RoundKey128 stage_key_from(
      const std::array<CandidateMask<4>, 32>& masks) {
    gift::RoundKey128 rk{};
    for (unsigned s = 0; s < 32; ++s) {
      const unsigned c = masks[s].value();
      rk.u |= static_cast<std::uint32_t>((c >> 1) & 1u) << s;
      rk.v |= static_cast<std::uint32_t>(c & 1u) << s;
    }
    return rk;
  }

  /// Residual-finisher verification hook (src/finisher/finisher.h).
  static bool finisher_verify(std::span<const gift::RoundKey128> stage_keys,
                              std::span<const gift::State128> pts,
                              std::span<const gift::State128> cts,
                              Key128& key_out,
                              std::uint64_t& offline_trials) {
    const Key128 key = assemble_master_key128(stage_keys);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ++offline_trials;
      if (!(reference_encrypt(pts[i], key) == cts[i])) return false;
    }
    key_out = key;
    return true;
  }

  /// Assembles the master key and verifies it against one more observed
  /// encryption's full 128-bit ciphertext.
  static void finalize(RecoveryResult<Gift128Recovery>& result,
                       ObservationSource<gift::State128>& source,
                       Xoshiro256& rng, gift::State128 last_pt,
                       std::uint64_t last_ct);
};

}  // namespace grinch::target
