// Cache-attack hooks for PRESENT-80 (our extension; generality of the
// GRINCH observation pipeline).
//
// PRESENT adds the round key *before* the S-Box layer:
//
//     round 0 S-Box index of segment s  =  nibble_s(plaintext XOR RK0)
//
// so the very first round leaks the top 64 key-register bits — no crafted
// plaintexts or multi-stage pipeline needed.  Each segment has 16 nibble
// candidates; absent cache lines eliminate them exactly as in GRINCH.
// RK0 covers key bits 79..16; the remaining 16 bits fall to an exhaustive
// search against one known plaintext/ciphertext pair.
//
// This file IS the whole PRESENT-80 port: everything else (platform,
// probers, elimination loop) comes from the generic target pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/key128.h"
#include "common/rng.h"
#include "target/candidate_mask.h"
#include "target/observation.h"
#include "target/present80_traits.h"
#include "target/recovery_engine.h"

namespace grinch::target {

/// Attack hooks driving KeyRecoveryEngine<Present80Recovery>: one stage of
/// random-plaintext joint elimination recovers RK0, then finalize()
/// brute-forces the 16 key bits the cache never sees.
struct Present80Recovery : Present80Traits {
  /// RK0 = key-register bits 79..16, one nibble per segment.
  using StageKey = std::uint64_t;

  static constexpr unsigned kStages = 1;
  static constexpr unsigned kCandidatesPerSegment = 16;
  /// Every segment's round-0 S-Box access shares one observation, so a
  /// single random plaintext updates all 16 masks at once.
  static constexpr bool kUpdateAllSegments = true;
  static constexpr std::uint64_t kDefaultSeed = 0x9135E27;  // "PRESENT"-ish

  /// No crafting needed: any random plaintext exercises every segment.
  class Crafter {
   public:
    explicit Crafter(Xoshiro256& rng) : rng_(&rng) {}
    [[nodiscard]] std::uint64_t craft(unsigned /*segment*/,
                                      const std::vector<std::uint64_t>&,
                                      unsigned /*stage*/) {
      return rng_->block64();
    }

   private:
    Xoshiro256* rng_;
  };

  static std::array<unsigned, 16> pre_key_nibbles(
      std::uint64_t plaintext, const std::vector<std::uint64_t>&,
      unsigned /*stage*/) {
    std::array<unsigned, 16> out{};
    for (unsigned s = 0; s < 16; ++s) out[s] = nibble(plaintext, s);
    return out;
  }

  /// Segment s of round 0 accesses index nibble_s(pt) ^ k_s.
  static unsigned candidate_index(unsigned nibble, unsigned v) noexcept {
    return (nibble ^ v) & 0xF;
  }

  static std::uint64_t stage_key_from(
      const std::array<CandidateMask<16>, 16>& masks) {
    std::uint64_t rk0 = 0;
    for (unsigned s = 0; s < 16; ++s) {
      rk0 |= static_cast<std::uint64_t>(masks[s].value()) << (4 * s);
    }
    return rk0;
  }

  /// Residual-finisher verification hook (src/finisher/finisher.h): a
  /// candidate fixes RK0 (key bits 79..16); the 16 bits the cache never
  /// sees fall to the same exhaustive loop finalize() runs, filtered on
  /// the first pair and confirmed on the rest.
  static bool finisher_verify(std::span<const std::uint64_t> stage_keys,
                              std::span<const std::uint64_t> pts,
                              std::span<const std::uint64_t> cts,
                              Key128& key_out,
                              std::uint64_t& offline_trials) {
    const std::uint64_t rk0 = stage_keys[0];
    for (std::uint64_t low = 0; low < (1u << 16); ++low) {
      Key128 key;
      key.hi = rk0 >> 48;          // bits 79..64
      key.lo = (rk0 << 16) | low;  // bits 63..0
      ++offline_trials;
      if (reference_encrypt(pts[0], key) != cts[0]) continue;
      bool ok = true;
      for (std::size_t i = 1; i < pts.size(); ++i) {
        ++offline_trials;
        if (reference_encrypt(pts[i], key) != cts[i]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        key_out = key;
        return true;
      }
    }
    return false;
  }

  /// Brute-forces key bits 15..0 given RK0, against the last observed
  /// plaintext/ciphertext pair.
  static void finalize(RecoveryResult<Present80Recovery>& result,
                       ObservationSource<std::uint64_t>& /*source*/,
                       Xoshiro256& /*rng*/, std::uint64_t last_pt,
                       std::uint64_t last_ct) {
    const std::uint64_t rk0 = result.stage_keys[0];
    result.offline_trials = 1u << 16;
    // RK0 = key-register bits 79..16; enumerate bits 15..0.
    for (std::uint64_t low = 0; low < (1u << 16); ++low) {
      Key128 key;
      key.hi = rk0 >> 48;          // bits 79..64
      key.lo = (rk0 << 16) | low;  // bits 63..0
      if (reference_encrypt(last_pt, key) == last_ct) {
        result.recovered_key = key;
        result.key_verified = true;
        result.success = true;
        return;
      }
    }
    // No match: RK0 must have been wrong (noise); success stays false.
  }
};

}  // namespace grinch::target
