// Cipher-neutral description of a victim's table placement in memory.
//
// Every target the observation pipeline attacks is a *table-implemented*
// cipher: a 16-entry S-Box LUT plus (optionally) a per-(segment, value)
// permutation-mask LUT.  Where those tables sit in the victim's address
// space — and how many S-Box entries share a row — is a property of the
// *target binary*, not of any one cipher, so the layout lives here in the
// target layer.  GIFT-64, GIFT-128 and PRESENT-80 all share this shape
// (the GRINCH paper's Table I sweeps `sbox_row_bytes` against the cache
// line size; the §IV-C countermeasure packs two entries per row).
#pragma once

#include <cstdint>

namespace grinch::target {

/// Address-space placement of the victim's tables.
struct TableLayout {
  std::uint64_t sbox_base = 0x1000;  ///< first byte of the S-Box table
  unsigned sbox_entries_per_row = 1; ///< 1 = paper default; 2 = countermeasure
  unsigned sbox_row_bytes = 1;       ///< address stride between rows
  std::uint64_t perm_base = 0x2000;  ///< first byte of the PermBits table
  unsigned perm_row_bytes = 8;       ///< u64 mask per row

  /// Number of S-Box rows under this layout.
  [[nodiscard]] constexpr unsigned sbox_rows() const noexcept {
    return 16 / sbox_entries_per_row;
  }

  /// Address of the S-Box row holding `index` (0..15).
  [[nodiscard]] constexpr std::uint64_t sbox_row_addr(unsigned index)
      const noexcept {
    return sbox_base + (index / sbox_entries_per_row) * sbox_row_bytes;
  }

  /// Address of the PermBits row for (segment, value).
  [[nodiscard]] constexpr std::uint64_t perm_row_addr(unsigned segment,
                                                      unsigned value)
      const noexcept {
    return perm_base + (segment * 16u + value) * perm_row_bytes;
  }
};

}  // namespace grinch::target
