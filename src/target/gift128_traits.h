// Target description of GIFT-128 for the generic pipeline.
//
// The NIST-LWC variant (GIFT-COFB et al.): 128-bit block, 40 rounds, 32
// segments, same 16-entry S-Box table and post-S-Box key addition as
// GIFT-64 — so it shares GIFT-64's key-free round 0.
#pragma once

#include <cstdint>

#include "common/key128.h"
#include "common/rng.h"
#include "gift/gift128.h"
#include "gift/table_gift128.h"

namespace grinch::target {

struct Gift128Traits {
  using Block = gift::State128;
  using TableCipher = gift::TableGift128;

  static constexpr const char* kName = "gift128";
  static constexpr unsigned kSegments = gift::Gift128::kSegments;
  static constexpr unsigned kRounds = gift::Gift128::kRounds;
  static constexpr unsigned kAccessesPerRound =
      gift::TableGift128::accesses_per_round();
  /// Key mixed AFTER the S-Box layer: round 0 leaks nothing.
  static constexpr unsigned kFirstKeyDependentRound = 1;

  /// The attacker reads the 128-bit ciphertext; fold it for the
  /// Observation field (recovery verifies against the full value via
  /// ObservationSource::last_ciphertext() instead).
  static std::uint64_t fold_ciphertext(Block ct) noexcept {
    return ct.hi ^ ct.lo;
  }
  static Block reference_encrypt(Block pt, const Key128& key) {
    return gift::Gift128::encrypt(pt, key);
  }
  static Block random_block(Xoshiro256& rng) {
    // Braced init: hi then lo, guaranteed left-to-right RNG draw order.
    return Block{rng.block64(), rng.block64()};
  }
  static Block block_from_words(std::uint64_t lo, std::uint64_t hi) noexcept {
    return Block{hi, lo};
  }
  /// Restricts a random 128-bit value to the cipher's key space (full).
  static Key128 canonical_key(const Key128& key) noexcept { return key; }
};

}  // namespace grinch::target
