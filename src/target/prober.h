// Attacker-side cache probing primitives.
//
// GRINCH step 2 ("Probe the Cache") offers two classical techniques:
//
//  * Flush+Reload — flush the monitored lines, let the victim run, reload
//    each line and time it: a fast reload means the victim touched it.
//    The paper prefers it because the flush is fast, allowing an earlier,
//    cleaner probe.
//  * Prime+Probe — fill the monitored sets with attacker lines, let the
//    victim run, re-access the attacker lines: a slow re-access means the
//    victim displaced one, i.e. touched the set.  Set-granular and
//    noisier (any victim access aliasing the set triggers it).
//
// Both observe *only* access latency, exactly like the real attacks; the
// hit/miss threshold is derived from the cache's configured latencies.
// The probers are cipher-agnostic: they monitor whatever TableLayout they
// are given, so one implementation serves every registered target.
//
// Hot path: probe() runs once per monitored encryption, so the line/set
// dedup bookkeeping (which index is the first of its cache line / set,
// which attacker addresses prime a set) is computed once at construction;
// prepare()/probe() then execute a fixed access schedule with no per-call
// allocation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "target/line_set.h"
#include "target/table_layout.h"

namespace grinch::target {

/// What a probe saw: presence of each monitored S-Box row's line.
struct ProbeResult {
  /// row_present[r] == true when S-Box row r's cache line was resident.
  LineSet row_present;
  std::uint64_t cycles = 0;  ///< attacker time spent probing

  /// Number of distinct *lines* observed present (rows sharing a line
  /// count once).
  [[nodiscard]] unsigned present_rows() const noexcept {
    return row_present.count();
  }
};

/// Common interface so platforms can swap probing techniques.
class CacheProber {
 public:
  virtual ~CacheProber() = default;

  /// Prepares the cache before the victim window (flush or prime).
  /// Returns attacker cycles spent.
  virtual std::uint64_t prepare() = 0;

  /// Measures after the victim window.
  virtual ProbeResult probe() = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Flush+Reload over the victim's S-Box rows.
class FlushReloadProber final : public CacheProber {
 public:
  FlushReloadProber(cachesim::Cache& cache, const TableLayout& layout);

  /// clflush of every monitored line.
  std::uint64_t prepare() override;

  /// Reload each monitored row and time it.  NOTE: reloading pollutes the
  /// cache (the real effect too); callers prepare() again before reuse.
  ProbeResult probe() override;

  [[nodiscard]] const char* name() const noexcept override {
    return "Flush+Reload";
  }

  /// Per-index reload schedule, fixed at construction.  Public so the
  /// wide observation path (target/wide_observe.h) can replay the exact
  /// schedule against its lockstep cache lanes.
  struct RowInfo {
    std::uint64_t addr = 0;      ///< the row's byte address
    std::uint8_t line_slot = 0;  ///< dense id of the row's cache line
    bool reload = false;  ///< first row of its line in probe order: access it
  };

  /// rows()[index] is probe()'s fixed schedule entry for S-Box index
  /// `index` (probe order is index 15 down to 0).
  [[nodiscard]] const std::array<RowInfo, LineSet::kMaxBits>& rows()
      const noexcept {
    return rows_;
  }

  /// Reload latency at or below this is classified a hit.
  [[nodiscard]] std::uint64_t threshold() const noexcept { return threshold_; }

 private:
  cachesim::Cache* cache_;
  TableLayout layout_;
  std::uint64_t threshold_;  ///< latency below => hit
  std::array<RowInfo, LineSet::kMaxBits> rows_{};
};

/// Prime+Probe over the sets the S-Box rows map to.
class PrimeProbeProber final : public CacheProber {
 public:
  /// `attacker_base` is an address region disjoint from the victim's
  /// tables, used to build eviction sets.
  PrimeProbeProber(cachesim::Cache& cache, const TableLayout& layout,
                   std::uint64_t attacker_base = 0x4000000);

  /// Primes every monitored set with `associativity` attacker lines.
  std::uint64_t prepare() override;

  /// Re-accesses the priming lines; a miss marks the set as touched.
  ProbeResult probe() override;

  [[nodiscard]] const char* name() const noexcept override {
    return "Prime+Probe";
  }

 private:
  /// Per-index probe schedule, fixed at construction.
  struct IndexInfo {
    std::uint8_t set_slot = 0;       ///< dense id of the index's cache set
    bool measure = false;  ///< first index of its set in probe order
    std::uint16_t addr_begin = 0;    ///< offset into probe_addrs_
  };

  cachesim::Cache* cache_;
  TableLayout layout_;
  std::uint64_t threshold_;
  std::array<IndexInfo, 16> index_info_{};
  /// Eviction-set addresses re-accessed by probe(), `associativity` many
  /// per measured set, in measurement order.
  std::vector<std::uint64_t> probe_addrs_;
  /// Priming access sequence of prepare(), in order.
  std::vector<std::uint64_t> prime_addrs_;
};

}  // namespace grinch::target
