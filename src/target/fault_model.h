// The channel fault vocabulary of the observation pipeline.
//
// A real probe channel is not the clean RTL-style oracle the direct-probe
// platform simulates: co-tenant traffic evicts monitored lines between
// the victim's access and the attacker's reload (false absents), hardware
// prefetchers and other processes touch monitored lines the victim never
// used (false presents), scheduler preemption makes the attacker miss an
// encryption window outright (drops) or read a window late enough that it
// reports the *previous* encryption's residue (stale), and a preemption
// that parks the attacker for several quanta corrupts a whole run of
// consecutive observations (bursts).  CACHE SNIPER (Briongos et al.)
// documents the first three on real hardware; the GRINCH paper's MPSoC
// results survive exactly this channel.
//
// FaultProfile names each failure mode with an independent rate; the
// FaultyObservationSource decorator (target/faulty_source.h) injects them
// deterministically from per-mode Xoshiro256 sub-streams, and the
// simulation platforms' eviction-noise knobs (soc::DirectProbePlatform's
// noise_accesses_per_round) are documented against the same vocabulary:
// cache-level third-party traffic is the *mechanism* whose channel-level
// *symptom* is a false-absent rate.
#pragma once

#include <cstdint>
#include <string_view>

#include "cachesim/config.h"
#include "common/rng.h"

namespace grinch::target {

/// Per-observation channel fault rates.  All zero = clean channel (the
/// decorator and the engine's robustness machinery stay out of the way).
struct FaultProfile {
  /// P(a monitored line the victim touched reads as absent) — eviction
  /// noise: co-tenant traffic displaced the line before the reload.
  /// Applied per *cache line*, so indices sharing a line flip together.
  double false_absent_rate = 0.0;
  /// P(a monitored line the victim never touched reads as present) —
  /// prefetcher pull-ins and co-tenant touches of monitored lines.
  double false_present_rate = 0.0;
  /// P(the probe misses the encryption window entirely).  A dropped
  /// observation is *detectable* (the attacker knows its probe was late):
  /// it is delivered with Observation::dropped set and must be skipped.
  double dropped_rate = 0.0;
  /// P(the probe reports the previous delivered observation's line set)
  /// — a mistimed probe reading the prior window's residue.  Undetectable.
  double stale_rate = 0.0;
  /// P(a fault burst starts at this observation).  A burst models a
  /// scheduler preemption: this and the next `burst_length - 1`
  /// observations report uniformly random line occupancy.  Undetectable.
  double burst_rate = 0.0;
  /// Observations corrupted per burst.
  unsigned burst_length = 4;
  /// Master seed; each fault mode draws from its own Xoshiro256 sub-seeded
  /// via SplitMix64, so the modes' random streams are independent: tuning
  /// one rate never shifts another mode's decisions.
  std::uint64_t seed = 0xFA171;

  [[nodiscard]] constexpr bool any() const noexcept {
    return false_absent_rate > 0.0 || false_present_rate > 0.0 ||
           dropped_rate > 0.0 || stale_rate > 0.0 || burst_rate > 0.0;
  }

  /// The clean channel (all rates zero).
  [[nodiscard]] static constexpr FaultProfile clean() noexcept { return {}; }

  /// The documented moderate mixed profile (docs/ROBUSTNESS.md): every
  /// fault mode active at rates a voted engine (Config::noisy_defaults)
  /// rides out — all registered ciphers recover their full key within the
  /// default budget, with noise restarts along the way.
  [[nodiscard]] static constexpr FaultProfile moderate() noexcept {
    FaultProfile p;
    p.false_absent_rate = 0.02;
    p.false_present_rate = 0.02;
    p.dropped_rate = 0.03;
    p.stale_rate = 0.01;
    p.burst_rate = 0.005;
    p.burst_length = 3;
    return p;
  }

  /// The documented saturating profile: the channel is mostly garbage —
  /// half the encryption windows are missed outright and spurious
  /// presences pardon every candidate, so elimination starves.  Recovery
  /// within a sane budget is impossible and the engine's job is to
  /// degrade gracefully: exhaust the budget, then report the surviving
  /// candidate masks (kept wide, so they still contain the true
  /// candidates) and the residual brute-force cost.
  [[nodiscard]] static constexpr FaultProfile saturating() noexcept {
    FaultProfile p;
    p.false_absent_rate = 0.05;
    p.false_present_rate = 0.30;
    p.dropped_rate = 0.50;
    p.stale_rate = 0.10;
    p.burst_rate = 0.05;
    p.burst_length = 6;
    return p;
  }

  /// Named-profile lookup for CLI/bench front-ends ("clean", "moderate",
  /// "saturating").  Returns clean() for unknown names.
  [[nodiscard]] static constexpr FaultProfile named(
      std::string_view name) noexcept {
    if (name == "moderate") return moderate();
    if (name == "saturating") return saturating();
    return clean();
  }
};

/// The third-party (co-tenant) noise address space shared by simulation
/// platforms that model eviction noise at the cache level
/// (soc::DirectProbePlatform::Config::noise_accesses_per_round).
///
/// The region is chosen so noise traffic behaves exactly like the fault
/// vocabulary's false-absent mode and nothing else:
///  * it starts above every victim table (TableLayout places the S-Box at
///    0x1000 and the PermBits table at 0x2000; both end well below kBase),
///    so a noise access can never *fake* a monitored line's presence;
///  * it spans `kWaysCovered` full set-strides of the cache, so its
///    addresses alias every cache set — including each monitored set —
///    and heavy traffic evicts monitored lines (false absents);
///  * it ends below the Prime+Probe eviction-set region (0x4000000), so
///    noise cannot masquerade as the attacker's own priming lines.
/// tests/soc/platform_test.cpp pins all three properties.
struct NoiseAddressSpace {
  /// First byte of the noise region.
  static constexpr std::uint64_t kBase = 0x100000;
  /// Distinct tags per set the region provides (well past any
  /// associativity in use, so uniform draws evict from every way).
  static constexpr std::uint64_t kWaysCovered = 64;

  /// Bytes covered: kWaysCovered full passes over every set.
  [[nodiscard]] static constexpr std::uint64_t span(
      const cachesim::CacheConfig& cache) noexcept {
    return static_cast<std::uint64_t>(cache.line_bytes) * cache.num_sets *
           kWaysCovered;
  }

  /// One uniformly drawn noise address for this cache geometry.
  [[nodiscard]] static std::uint64_t draw(const cachesim::CacheConfig& cache,
                                          Xoshiro256& rng) noexcept {
    return kBase + rng.uniform(span(cache));
  }
};

}  // namespace grinch::target
