// GRINCH Step 3 state, cipher-agnostic: a bitmask over the candidates for
// one segment's unknown round-key bits.
//
// GIFT-style targets mix two key bits per segment (4 candidates); PRESENT
// mixes a whole nibble before the S-Box (16 candidates).  The elimination
// rule is identical either way: a candidate predicting an S-Box index
// whose cache line was *absent* from the observation is impossible, so
// masks shrink monotonically to the truth; an observation that would
// empty a mask is noise and resets it.  `N` is the candidate count.
#pragma once

#include <bit>
#include <cstdint>

namespace grinch::target {

template <unsigned N>
class CandidateMask {
  static_assert(N >= 2 && N <= 16, "candidate counts are 2..16");

 public:
  static constexpr std::uint16_t kFull =
      static_cast<std::uint16_t>((1u << N) - 1u);

  [[nodiscard]] bool contains(unsigned c) const noexcept {
    return (mask_ >> c) & 1u;
  }
  void remove(unsigned c) noexcept {
    mask_ &= static_cast<std::uint16_t>(~(1u << c));
  }
  void reset() noexcept { mask_ = kFull; }
  [[nodiscard]] bool empty() const noexcept { return mask_ == 0; }
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(std::popcount(mask_));
  }
  [[nodiscard]] bool resolved() const noexcept {
    return std::has_single_bit(mask_);
  }
  /// The sole surviving candidate. Precondition: resolved().
  [[nodiscard]] unsigned value() const noexcept {
    for (unsigned c = 0; c < N; ++c) {
      if (contains(c)) return c;
    }
    return 0;
  }
  [[nodiscard]] std::uint16_t mask() const noexcept { return mask_; }
  void set_mask(std::uint16_t m) noexcept { mask_ = m & kFull; }

 private:
  std::uint16_t mask_ = kFull;
};

}  // namespace grinch::target
