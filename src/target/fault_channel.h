// The block-type-independent core of channel fault injection.
//
// FaultChannel is the corruption state machine FaultyObservationSource
// wraps around a platform: five independent Xoshiro256 sub-streams (one
// per fault mode, sub-seeded from FaultProfile::seed via SplitMix64), the
// burst countdown, the stale-replay memory and the fault counters.  It is
// extracted from the decorator so the multi-trial wide recovery engine
// (target/wide_engine.h) can run one independent channel per lane — same
// draw schedule, same precedence, same statistics — without carrying a
// full ObservationSource decorator per lane.
//
// Determinism contract (unchanged from the decorator): each enabled mode
// draws exactly once per delivered observation (line-level modes once per
// monitored line), regardless of what the other modes decided, so
// corruption is a pure function of the delivered-observation sequence.
// State is value-copyable: save()/restore() give the decorator its
// checkpoint/rewind discipline for speculative batches.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "target/fault_model.h"
#include "target/line_set.h"
#include "target/observation.h"
#include "target/table_layout.h"

namespace grinch::target {

class FaultChannel {
 public:
  /// Faults delivered so far (consumed-prefix accurate under restore()).
  struct Stats {
    std::uint64_t observations = 0;  ///< delivered through the channel
    std::uint64_t dropped = 0;       ///< marked Observation::dropped
    std::uint64_t stale = 0;         ///< previous line set replayed
    std::uint64_t bursts = 0;        ///< burst windows started
    std::uint64_t burst_corrupted = 0;  ///< observations inside a burst
    std::uint64_t lines_flipped_absent = 0;
    std::uint64_t lines_flipped_present = 0;
  };

  /// Everything a rewind must restore: the five sub-streams, the burst
  /// countdown, the stale-replay memory, and the counters.
  struct State {
    Xoshiro256 absent_rng{0}, present_rng{0}, drop_rng{0}, stale_rng{0},
        burst_rng{0};
    unsigned burst_remaining = 0;
    LineSet last_present;
    bool has_last = false;
    Stats stats;
  };

  /// Line grouping: rows of the observation bitset that share a cache
  /// line corrupt together.  Row r holds sbox_entries_per_row indices,
  /// and `index_line_ids` names each index's line (the inner source's
  /// index_line_ids()).
  FaultChannel(const FaultProfile& profile, const TableLayout& layout,
               std::span<const unsigned> index_line_ids)
      : profile_(profile), rows_(layout.sbox_rows()) {
    SplitMix64 seeder{profile.seed};
    state_.absent_rng = Xoshiro256{seeder.next()};
    state_.present_rng = Xoshiro256{seeder.next()};
    state_.drop_rng = Xoshiro256{seeder.next()};
    state_.stale_rng = Xoshiro256{seeder.next()};
    state_.burst_rng = Xoshiro256{seeder.next()};
    unsigned lines = 0;
    std::array<std::uint64_t, LineSet::kMaxBits> mask_of_line{};
    std::array<bool, LineSet::kMaxBits> seen{};
    for (unsigned r = 0; r < rows_; ++r) {
      const unsigned line = index_line_ids[r * layout.sbox_entries_per_row];
      mask_of_line[line] |= std::uint64_t{1} << r;
      if (!seen[line]) {
        seen[line] = true;
        ++lines;
      }
    }
    line_masks_.assign(mask_of_line.begin(), mask_of_line.begin() + lines);
  }

  /// Applies one observation's worth of faults in place, advancing every
  /// enabled sub-stream by its fixed draw count.
  void corrupt(Observation& o) {
    State& ch = state_;
    ++ch.stats.observations;

    // Fixed draw schedule: each enabled mode draws regardless of what the
    // other modes decided, so the streams stay independent of each
    // other's rates.  Precedence among the whole-observation modes is
    // burst > dropped > stale (a preempted attacker cannot also probe).
    bool burst_now = ch.burst_remaining > 0;
    if (profile_.burst_rate > 0.0 && !burst_now &&
        hit(ch.burst_rng, profile_.burst_rate)) {
      ch.burst_remaining = profile_.burst_length;
      ++ch.stats.bursts;
      burst_now = ch.burst_remaining > 0;
    }
    const bool drop_now =
        profile_.dropped_rate > 0.0 && hit(ch.drop_rng, profile_.dropped_rate);
    const bool stale_now =
        profile_.stale_rate > 0.0 && hit(ch.stale_rng, profile_.stale_rate);
    std::uint64_t evict_mask = 0;
    std::uint64_t inject_mask = 0;
    if (profile_.false_absent_rate > 0.0) {
      for (const std::uint64_t m : line_masks_) {
        if (hit(ch.absent_rng, profile_.false_absent_rate)) evict_mask |= m;
      }
    }
    if (profile_.false_present_rate > 0.0) {
      for (const std::uint64_t m : line_masks_) {
        if (hit(ch.present_rng, profile_.false_present_rate)) inject_mask |= m;
      }
    }

    if (burst_now) {
      --ch.burst_remaining;
      ++ch.stats.burst_corrupted;
      // Scheduler preemption: the probe reports uniform garbage occupancy.
      LineSet garbage;
      garbage.assign(rows_, false);
      for (const std::uint64_t m : line_masks_) {
        if (ch.burst_rng.coin() != 0) {
          for (unsigned r = 0; r < rows_; ++r) {
            if ((m >> r) & 1u) garbage.set(r, true);
          }
        }
      }
      o.present = garbage;
    } else if (drop_now) {
      ++ch.stats.dropped;
      // The probe missed the window: flag it (detectable) and report the
      // uninformative all-present set in case a consumer looks anyway.
      o.dropped = true;
      o.present.assign(rows_, true);
    } else if (stale_now && ch.has_last) {
      ++ch.stats.stale;
      o.present = ch.last_present;
    } else {
      const std::uint64_t before = o.present.word();
      const std::uint64_t after = (before & ~evict_mask) | inject_mask;
      ch.stats.lines_flipped_absent +=
          static_cast<std::uint64_t>(std::popcount(before & evict_mask));
      ch.stats.lines_flipped_present +=
          static_cast<std::uint64_t>(std::popcount(inject_mask & ~before));
      o.present = LineSet::from_word(after, rows_);
    }

    ch.last_present = o.present;
    ch.has_last = true;
  }

  [[nodiscard]] const State& state() const noexcept { return state_; }
  void restore(const State& state) { state_ = state; }

  [[nodiscard]] const Stats& stats() const noexcept { return state_.stats; }
  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }

 private:
  static bool hit(Xoshiro256& rng, double rate) noexcept {
    // 53-bit uniform in [0, 1): deterministic, unbiased enough for rates.
    const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    return u < rate;
  }

  FaultProfile profile_;
  unsigned rows_ = 0;
  /// Per-line row bitmasks (one entry per distinct cache line).
  std::vector<std::uint64_t> line_masks_;
  State state_;
};

}  // namespace grinch::target
