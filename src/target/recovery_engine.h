// The single generic elimination-based key-recovery engine.
//
// One template replaces the per-cipher attack drivers (Grinch128Attack,
// Present80Attack) with the loop they shared: per stage, keep a candidate
// mask per segment, craft (or draw) a plaintext, observe one monitored
// encryption, and eliminate every candidate whose predicted S-Box index
// was absent from the cache; empty masks signal noise and reset.  When
// all stages resolve, a recovery-specific `finalize` assembles and
// verifies the master key (GIFT walks the key schedule backwards; PRESENT
// brute-forces the 16 bits the cache never sees).
//
// `Recovery` supplies the cipher-specific attack hooks on top of its
// platform traits (full contract in docs/TARGETS.md):
//   using Block / StageKey;
//   static constexpr kName, kSegments, kStages, kCandidatesPerSegment,
//                    kUpdateAllSegments, kDefaultSeed;
//   class Crafter {  // owns any precomputed target-bit lists
//     explicit Crafter(Xoshiro256& rng);
//     Block craft(unsigned segment, const std::vector<StageKey>&, unsigned
//                 stage);
//   };
//   static std::array<unsigned, kSegments> pre_key_nibbles(
//       Block pt, const std::vector<StageKey>&, unsigned stage);
//   static unsigned candidate_index(unsigned nibble, unsigned candidate);
//   static StageKey stage_key_from(const masks array);
//   static void finalize(RecoveryResult&, ObservationSource<Block>&,
//                        Xoshiro256&, Block last_pt, std::uint64_t last_ct);
//
// Hot path (perf notes, see DESIGN.md "Performance"):
//  * Elimination is a word-wise AND: the observation's LineSet word is
//    gathered into a per-candidate keep mask and folded into the
//    CandidateMask in one step — no per-candidate branching, no heap.
//  * The first unresolved segment is tracked with a cursor + unresolved
//    count instead of rescanning all segments per encryption.
//  * Encryptions are submitted in speculative batches through
//    observe_batch (Config::max_batch; 1 = strict scalar observe() calls).
//    The engine snapshots the RNG, crafts a batch assuming the current
//    target segment stays unresolved, observes it, then REPLAYS the craft
//    sequence against the real mask state: each batch element is consumed
//    only if its replayed plaintext matches the speculative one, so the
//    consumed plaintext sequence, RNG stream, observation order and
//    encryption counts are byte-identical to the scalar loop for any
//    max_batch.  A mismatch (the target segment resolved mid-batch)
//    discards the rest of the batch and carries the already-crafted
//    plaintext into the next one.  Discarded speculative encryptions are
//    wall-time waste only — they are never counted, and on the
//    flush-per-observation direct-probe platform they cannot alter later
//    observations (every probe verdict is fully determined by the
//    accesses between that observation's own flush and probe).
//
// The GIFT-64 paper pipeline with its noise machinery (voting,
// cross-round solving, statistical elimination) remains in
// attack::GrinchAttack; this engine is the clean-channel core all three
// ciphers share.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "target/candidate_mask.h"
#include "target/observation.h"

namespace grinch::target {

/// Outcome of one KeyRecoveryEngine run.
template <typename Recovery>
struct RecoveryResult {
  bool success = false;
  bool key_verified = false;
  /// Every stage's candidate masks resolved via the cache channel (for
  /// PRESENT this means RK0; the low 16 bits still need the offline
  /// search, whose failure leaves success false).
  bool stages_resolved = false;
  Key128 recovered_key{};
  std::uint64_t total_encryptions = 0;
  /// Offline work (e.g. PRESENT's 2^16 exhaustive search); 0 when the
  /// recovery needs none.
  std::uint64_t offline_trials = 0;
  std::array<std::uint64_t, Recovery::kStages> stage_encryptions{};
  /// Recovered per-stage keys, one per resolved stage.
  std::vector<typename Recovery::StageKey> stage_keys;
};

template <typename Recovery>
class KeyRecoveryEngine {
 public:
  using Block = typename Recovery::Block;

  struct Config {
    std::uint64_t max_encryptions = 100000;
    std::uint64_t seed = Recovery::kDefaultSeed;
    /// Largest speculative batch submitted per observe_batch call; the
    /// engine ramps 1 -> max_batch while speculation holds and resets on
    /// a mispredict.  1 pins the engine to scalar observe() semantics
    /// (which every other value reproduces bit-identically anyway).
    unsigned max_batch = 16;
  };

  KeyRecoveryEngine(ObservationSource<Block>& source, const Config& config)
      : source_(&source), config_(config), rng_(config.seed) {}

  [[nodiscard]] RecoveryResult<Recovery> run() {
    RecoveryResult<Recovery> result;
    typename Recovery::Crafter crafter{rng_};
    std::vector<typename Recovery::StageKey> recovered;
    Block last_pt{};
    bool observed_any = false;
    const unsigned max_batch = std::max(config_.max_batch, 1u);

    for (unsigned stage = 0; stage < Recovery::kStages; ++stage) {
      std::array<CandidateMask<Recovery::kCandidatesPerSegment>,
                 Recovery::kSegments>
          masks{};
      // Satellite invariant: `cursor` is the lowest unresolved segment
      // whenever `unresolved > 0`; maintained incrementally by update().
      unsigned unresolved = Recovery::kSegments;
      unsigned cursor = 0;

      auto update = [&](unsigned s, const LineSet& present,
                        const std::array<unsigned, Recovery::kSegments>&
                            nibbles) {
        // keep bit c: candidate c's predicted S-Box index was present.
        std::uint16_t keep = 0;
        const std::uint64_t word = present.word();
        for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
          keep |= static_cast<std::uint16_t>(
              ((word >> Recovery::candidate_index(nibbles[s], c)) & 1u) << c);
        }
        const bool was_resolved = masks[s].resolved();
        const std::uint16_t next =
            static_cast<std::uint16_t>(masks[s].mask() & keep);
        if (next == 0) {
          masks[s].reset();  // noisy observation
        } else {
          masks[s].set_mask(next);
        }
        const bool now_resolved = masks[s].resolved();
        if (was_resolved == now_resolved) return;
        if (now_resolved) {
          --unresolved;
          while (cursor < Recovery::kSegments && masks[cursor].resolved()) {
            ++cursor;
          }
        } else {
          // A reset can re-open a segment already counted resolved (joint
          // mode under noise); pull the cursor back if it jumped past it.
          ++unresolved;
          cursor = std::min(cursor, s);
        }
      };

      unsigned batch_size = 1;
      bool have_carry = false;
      Block carry{};
      while (unresolved > 0) {
        const std::uint64_t budget =
            config_.max_encryptions - result.total_encryptions;
        if (budget == 0) return result;  // a carry implies budget >= 1

        // Speculatively craft the batch as if `cursor` stays the target
        // throughout.  A carried-over plaintext was already crafted (and
        // budget-checked) against the true state, so it skips the replay.
        pts_.clear();
        unsigned pre_validated = 0;
        if (have_carry) {
          pts_.push_back(carry);
          have_carry = false;
          pre_validated = 1;
        }
        const auto want = static_cast<std::size_t>(
            std::min<std::uint64_t>(batch_size, budget));
        const Xoshiro256 rng_snapshot = rng_;
        while (pts_.size() < want) {
          pts_.push_back(crafter.craft(cursor, recovered, stage));
        }
        source_->observe_batch(std::span<const Block>(pts_), stage, batch_);
        last_pt = pts_.back();
        observed_any = true;
        rng_ = rng_snapshot;

        // Replay-consume: re-run the scalar loop's craft sequence against
        // the live masks; element j is valid only if the replayed
        // plaintext equals the speculative one.
        bool mispredicted = false;
        for (std::size_t j = 0; j < pts_.size(); ++j) {
          if (j >= pre_validated) {
            if (result.total_encryptions >= config_.max_encryptions) {
              return result;
            }
            const Block pt = crafter.craft(cursor, recovered, stage);
            if (!(pt == pts_[j])) {
              // The target moved mid-batch: keep this plaintext for the
              // next submission, drop the stale speculative tail.
              carry = pt;
              have_carry = true;
              mispredicted = true;
              break;
            }
          }
          const Observation& obs = batch_[j];
          ++result.total_encryptions;
          ++result.stage_encryptions[stage];
          const auto nibbles =
              Recovery::pre_key_nibbles(pts_[j], recovered, stage);
          if constexpr (Recovery::kUpdateAllSegments) {
            // Joint exploitation: every segment's S-Box access shares the
            // observation, so one encryption updates all masks at once.
            for (unsigned s = 0; s < Recovery::kSegments; ++s) {
              update(s, obs.present, nibbles);
            }
          } else {
            // Crafted-plaintext mode: only the targeted segment's pre-key
            // bits are pinned, so only its mask may be updated.
            update(cursor, obs.present, nibbles);
          }
          if (unresolved == 0) break;  // stage done; drop the spare tail
        }
        batch_size = mispredicted
                         ? 1
                         : std::min(max_batch, batch_size * 2);
      }

      recovered.push_back(Recovery::stage_key_from(masks));
    }

    result.stages_resolved = true;
    result.stage_keys = recovered;
    const std::uint64_t last_ct =
        observed_any ? Recovery::fold_ciphertext(source_->last_ciphertext())
                     : 0;
    Recovery::finalize(result, *source_, rng_, last_pt, last_ct);
    return result;
  }

 private:
  ObservationSource<Block>* source_;
  Config config_;
  Xoshiro256 rng_;
  /// Batch buffers, reused across the run (warm after one iteration).
  std::vector<Block> pts_;
  ObservationBatch batch_;
};

}  // namespace grinch::target
