// The single generic elimination-based key-recovery engine.
//
// One template replaces the per-cipher attack drivers (Grinch128Attack,
// Present80Attack) with the loop they shared: per stage, keep a candidate
// mask per segment, craft (or draw) a plaintext, observe one monitored
// encryption, and eliminate every candidate whose predicted S-Box index
// was absent from the cache; empty masks signal noise and reset.  When
// all stages resolve, a recovery-specific `finalize` assembles and
// verifies the master key (GIFT walks the key schedule backwards; PRESENT
// brute-forces the 16 bits the cache never sees).
//
// `Recovery` supplies the cipher-specific attack hooks on top of its
// platform traits (full contract in docs/TARGETS.md):
//   using Block / StageKey;
//   static constexpr kName, kSegments, kStages, kCandidatesPerSegment,
//                    kUpdateAllSegments, kDefaultSeed;
//   class Crafter {  // owns any precomputed target-bit lists
//     explicit Crafter(Xoshiro256& rng);
//     Block craft(unsigned segment, const std::vector<StageKey>&, unsigned
//                 stage);
//   };
//   static std::array<unsigned, kSegments> pre_key_nibbles(
//       Block pt, const std::vector<StageKey>&, unsigned stage);
//   static unsigned candidate_index(unsigned nibble, unsigned candidate);
//   static StageKey stage_key_from(const masks array);
//   static void finalize(RecoveryResult&, ObservationSource<Block>&,
//                        Xoshiro256&, Block last_pt, std::uint64_t last_ct);
//
// The GIFT-64 paper pipeline with its noise machinery (voting,
// cross-round solving, statistical elimination) remains in
// attack::GrinchAttack; this engine is the clean-channel core all three
// ciphers share.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "target/candidate_mask.h"
#include "target/observation.h"

namespace grinch::target {

/// Outcome of one KeyRecoveryEngine run.
template <typename Recovery>
struct RecoveryResult {
  bool success = false;
  bool key_verified = false;
  /// Every stage's candidate masks resolved via the cache channel (for
  /// PRESENT this means RK0; the low 16 bits still need the offline
  /// search, whose failure leaves success false).
  bool stages_resolved = false;
  Key128 recovered_key{};
  std::uint64_t total_encryptions = 0;
  /// Offline work (e.g. PRESENT's 2^16 exhaustive search); 0 when the
  /// recovery needs none.
  std::uint64_t offline_trials = 0;
  std::array<std::uint64_t, Recovery::kStages> stage_encryptions{};
  /// Recovered per-stage keys, one per resolved stage.
  std::vector<typename Recovery::StageKey> stage_keys;
};

template <typename Recovery>
class KeyRecoveryEngine {
 public:
  using Block = typename Recovery::Block;

  struct Config {
    std::uint64_t max_encryptions = 100000;
    std::uint64_t seed = Recovery::kDefaultSeed;
  };

  KeyRecoveryEngine(ObservationSource<Block>& source, const Config& config)
      : source_(&source), config_(config), rng_(config.seed) {}

  [[nodiscard]] RecoveryResult<Recovery> run() {
    RecoveryResult<Recovery> result;
    typename Recovery::Crafter crafter{rng_};
    std::vector<typename Recovery::StageKey> recovered;
    Block last_pt{};
    std::uint64_t last_ct = 0;

    for (unsigned stage = 0; stage < Recovery::kStages; ++stage) {
      std::array<CandidateMask<Recovery::kCandidatesPerSegment>,
                 Recovery::kSegments>
          masks{};
      auto all_done = [&] {
        for (const auto& m : masks) {
          if (!m.resolved()) return false;
        }
        return true;
      };

      while (!all_done()) {
        if (result.total_encryptions >= config_.max_encryptions) return result;

        unsigned target = 0;
        for (unsigned s = 0; s < Recovery::kSegments; ++s) {
          if (!masks[s].resolved()) {
            target = s;
            break;
          }
        }
        const Block pt = crafter.craft(target, recovered, stage);
        const Observation obs = source_->observe(pt, stage);
        ++result.total_encryptions;
        ++result.stage_encryptions[stage];
        last_pt = pt;
        last_ct = obs.ciphertext;

        const auto nibbles = Recovery::pre_key_nibbles(pt, recovered, stage);
        auto update = [&](unsigned s) {
          auto trial = masks[s];
          for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
            if (!trial.contains(c)) continue;
            const unsigned index = Recovery::candidate_index(nibbles[s], c);
            if (!obs.present[index]) trial.remove(c);
          }
          if (trial.empty()) {
            masks[s].reset();  // noisy observation
          } else {
            masks[s] = trial;
          }
        };
        if constexpr (Recovery::kUpdateAllSegments) {
          // Joint exploitation: every segment's S-Box access shares the
          // observation, so one encryption updates all masks at once.
          for (unsigned s = 0; s < Recovery::kSegments; ++s) update(s);
        } else {
          // Crafted-plaintext mode: only the targeted segment's pre-key
          // bits are pinned, so only its mask may be updated.
          update(target);
        }
      }

      recovered.push_back(Recovery::stage_key_from(masks));
    }

    result.stages_resolved = true;
    result.stage_keys = recovered;
    Recovery::finalize(result, *source_, rng_, last_pt, last_ct);
    return result;
  }

 private:
  ObservationSource<Block>* source_;
  Config config_;
  Xoshiro256 rng_;
};

}  // namespace grinch::target
