// The single generic elimination-based key-recovery engine.
//
// One template replaces the per-cipher attack drivers (Grinch128Attack,
// Present80Attack) with the loop they shared: per stage, keep a candidate
// mask per segment, craft (or draw) a plaintext, observe one monitored
// encryption, and eliminate every candidate whose predicted S-Box index
// was absent from the cache; empty masks signal noise and reset.  When
// all stages resolve, a recovery-specific `finalize` assembles and
// verifies the master key (GIFT walks the key schedule backwards; PRESENT
// brute-forces the 16 bits the cache never sees).
//
// The per-stage state machine (masks, voting, stall/backoff, cursor) is
// target/stage_state.h, shared verbatim with the multi-trial wide engine
// (target/wide_engine.h); RecoveryResult lives there too.
//
// `Recovery` supplies the cipher-specific attack hooks on top of its
// platform traits (full contract in docs/TARGETS.md):
//   using Block / StageKey;
//   static constexpr kName, kSegments, kStages, kCandidatesPerSegment,
//                    kUpdateAllSegments, kDefaultSeed;
//   class Crafter {  // owns any precomputed target-bit lists
//     explicit Crafter(Xoshiro256& rng);
//     Block craft(unsigned segment, const std::vector<StageKey>&, unsigned
//                 stage);
//   };
//   static std::array<unsigned, kSegments> pre_key_nibbles(
//       Block pt, const std::vector<StageKey>&, unsigned stage);
//   static unsigned candidate_index(unsigned nibble, unsigned candidate);
//   static StageKey stage_key_from(const masks array);
//   static void finalize(RecoveryResult&, ObservationSource<Block>&,
//                        Xoshiro256&, Block last_pt, std::uint64_t last_ct);
//
// Hot path (perf notes, see DESIGN.md "Performance"):
//  * Elimination is a table lookup: the observation's LineSet word
//    indexes the recovery's precomputed EliminationTable
//    (target/stage_state.h) and the keep mask folds into the
//    CandidateMask in one AND — no per-candidate branching, no heap.
//    (The voted path trades that for per-candidate counters, but only
//    when Config::vote_threshold > 1.)
//  * The first unresolved segment is tracked with a cursor + unresolved
//    count instead of rescanning all segments per encryption.
//  * Encryptions are submitted in speculative batches through
//    observe_batch (Config::max_batch; 1 = strict scalar observe() calls).
//    The engine snapshots the RNG, crafts a batch assuming the current
//    target segment stays unresolved, observes it, then REPLAYS the craft
//    sequence against the real mask state: each batch element is consumed
//    only if its replayed plaintext matches the speculative one, so the
//    consumed plaintext sequence, RNG stream, observation order and
//    encryption counts are byte-identical to the scalar loop for any
//    max_batch.  A mismatch (the target segment resolved mid-batch)
//    discards the rest of the batch and carries the already-crafted
//    plaintext into the next one.  Discarded speculative encryptions are
//    wall-time waste only — they are never counted, and on the
//    flush-per-observation direct-probe platform they cannot alter later
//    observations (every probe verdict is fully determined by the
//    accesses between that observation's own flush and probe).  With
//    fault injection enabled the channel state IS shared across
//    observations, so the engine rewinds the fault channel to the
//    consumed prefix after every batch (FaultyObservationSource::
//    rewind_to), restoring the same guarantee.
//  * Config::wide_width > 1 moves the speculative batches onto the
//    transposed wide transport (ObservationSource::observe_wide): up to
//    wide_width trials per call run through the lockstep cache fast path
//    where supported (and through the scalar pipeline otherwise), with
//    every consumed Observation extracted bit-identically.  wide_width
//    then REPLACES max_batch as the speculation ceiling; 1 keeps today's
//    observe_batch path.
//
// Noise robustness (docs/ROBUSTNESS.md): the paper's MPSoC results
// survive a channel with evictions, spurious hits and missed windows.
// With Config::faults set, the engine wraps its source in a
// FaultyObservationSource and degrades gracefully:
//  * voted elimination (Config::vote_threshold, ported from
//    attack/eliminator.h): a candidate dies only after `threshold`
//    absent observations without an intervening presence, dropping the
//    wrong-elimination probability exponentially in the threshold;
//  * detectably dropped observations cost budget but never eliminate;
//  * a segment whose mask empties resets (counted per segment and in
//    RecoveryResult::noise_restarts); a segment that keeps resetting
//    backs off — speculation collapses to scalar and its effective vote
//    threshold escalates (Config::backoff_resets / max_vote_threshold);
//  * a segment stuck without mask progress for Config::stall_limit
//    updates resets too (false presents can wedge a candidate alive);
//  * on budget exhaustion the result is *partial*, not a bare failure:
//    RecoveryResult carries the failed stage, its surviving candidate
//    masks, and the residual brute-force cost in bits.
// With all fault rates zero and the default knobs, every path above is
// inert and the engine is byte-identical to the clean-channel core.
//
// The GIFT-64 paper pipeline with its full noise machinery (cross-round
// solving, statistical elimination) remains in attack::GrinchAttack.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "finisher/tracker.h"
#include "target/fault_model.h"
#include "target/faulty_source.h"
#include "target/observation.h"
#include "target/stage_state.h"

namespace grinch::target {

template <typename Recovery>
class KeyRecoveryEngine {
 public:
  using Block = typename Recovery::Block;

  struct Config {
    std::uint64_t max_encryptions = 100000;
    std::uint64_t seed = Recovery::kDefaultSeed;
    /// Largest speculative batch submitted per observe_batch call; the
    /// engine ramps 1 -> max_batch while speculation holds and resets on
    /// a mispredict.  1 pins the engine to scalar observe() semantics
    /// (which every other value reproduces bit-identically anyway).
    unsigned max_batch = 16;
    /// Wide transport width (clamped to [1, 64]).  1 = today's
    /// observe_batch path.  > 1 routes speculative batches of up to
    /// wide_width encryptions through ObservationSource::observe_wide —
    /// the transposed lockstep fast path on supported cache configs, the
    /// scalar pipeline otherwise — and supersedes max_batch as the
    /// speculation ceiling.  Consumed observations, RNG stream and every
    /// RecoveryResult field are bit-identical at any width.
    unsigned wide_width = 1;
    /// Absent observations (without an intervening presence) needed to
    /// eliminate a candidate.  1 = the paper's hard elimination, the
    /// table-lookup fast path; raise to 2-3 on noisy channels where
    /// evictions fake absences (see attack::eliminate_candidates_voted,
    /// whose semantics this ports segment-locally).
    unsigned vote_threshold = 1;
    /// Ceiling for per-segment threshold escalation under backoff.
    unsigned max_vote_threshold = 6;
    /// A segment resetting this many times within one stage escalates
    /// its effective vote threshold by one (up to max_vote_threshold)
    /// and collapses speculation to scalar for the next batch.  0
    /// disables escalation.
    unsigned backoff_resets = 6;
    /// Updates of one unresolved segment without any mask change before
    /// the engine declares it stalled and resets it.  0 disables stall
    /// detection.  The default never triggers on a clean channel (a
    /// clean observation of an unresolved segment prunes with
    /// probability bounded well away from 0).
    unsigned stall_limit = 512;
    /// Channel fault injection (target/fault_model.h).  All-zero rates =
    /// clean channel: no decorator is interposed and the engine is
    /// byte-identical to the pre-fault-layer core.
    FaultProfile faults;
    /// Residual-key finisher (src/finisher/, docs/ROBUSTNESS.md): when
    /// set, a run that would degrade to a partial escalates instead —
    /// the remaining budget splits evenly over unfinished stages, a
    /// starved stage's key is ML-assumed from all-segment presence
    /// evidence so later stages still accrue evidence, two known
    /// plaintext/ciphertext pairs are captured, and the
    /// maximum-likelihood residual search runs inline.  Off (the
    /// default) the engine is byte-identical to the pre-finisher core.
    bool finish_partials = false;
    /// Candidates the inline finisher may test (finisher::Options::
    /// max_candidates).
    std::uint64_t finish_max_candidates = std::uint64_t{1} << 17;
    /// Optional thread pool for parallel finisher verification; the
    /// reported outcome is byte-identical at any thread count (and to
    /// the serial nullptr path).  Must be null when the engine itself
    /// runs inside a pool task (runner::ThreadPool does not nest).
    runner::ThreadPool* finish_pool = nullptr;

    /// Knobs documented for noisy channels (docs/ROBUSTNESS.md): voted
    /// elimination at threshold 2, everything else default — backoff and
    /// verify-restart escalation harden the threshold further when the
    /// channel demands it.
    [[nodiscard]] static Config noisy_defaults() {
      Config c;
      c.vote_threshold = 2;
      return c;
    }
  };

  KeyRecoveryEngine(ObservationSource<Block>& source, const Config& config)
      : source_(&source), config_(config), rng_(config.seed) {}

  [[nodiscard]] RecoveryResult<Recovery> run() {
    RecoveryResult<Recovery> result;
    // The fault channel sits between the engine and the platform only
    // when a fault rate is nonzero; a clean run drives the source
    // directly (and the decorator, if interposed, must be rewound to the
    // consumed prefix after every speculative batch — see header).
    FaultyObservationSource<Block> faulty{*source_, config_.faults};
    const bool faulted = config_.faults.any();
    ObservationSource<Block>& source =
        faulted ? static_cast<ObservationSource<Block>&>(faulty) : *source_;
    FaultyObservationSource<Block>* channel = faulted ? &faulty : nullptr;

    typename Recovery::Crafter crafter{rng_};
    std::vector<typename Recovery::StageKey> recovered;
    Block last_pt{};
    bool observed_any = false;
    const unsigned wide_width = std::clamp(config_.wide_width, 1u, 64u);
    const bool wide = wide_width > 1;
    const unsigned max_batch =
        wide ? wide_width : std::max(config_.max_batch, 1u);
    const ElimParams params{
        std::max(config_.vote_threshold, 1u),
        std::max(config_.max_vote_threshold,
                 std::max(config_.vote_threshold, 1u)),
        config_.backoff_resets, config_.stall_limit};
    // Run-level escalation: every backoff_resets full-attack restarts
    // (wrong key failed verification) harden elimination one notch more.
    unsigned attempt_extra = 0;
    // Finish mode (Config::finish_partials): per-stage budget quotas +
    // all-segment evidence accumulation; with it off, stage_end below is
    // always max_encryptions and every finish path is inert.
    const bool finishing = config_.finish_partials;
    finisher::FinishTracker<Recovery> tracker;

    for (;;) {  // one iteration per full-attack attempt
      for (unsigned stage = 0; stage < Recovery::kStages; ++stage) {
        StageState<Recovery> st;
        if (finishing) {
          tracker.begin_stage(stage, result.total_encryptions,
                              config_.max_encryptions);
        }
        const std::uint64_t stage_end =
            finishing ? tracker.stage_end() : config_.max_encryptions;
        bool assumed = false;

        unsigned batch_size = 1;
        bool have_carry = false;
        Block carry{};
        while (st.unresolved > 0) {
          const std::uint64_t budget =
              stage_end > result.total_encryptions
                  ? stage_end - result.total_encryptions
                  : 0;
          if (budget == 0) {  // a carry implies budget >= 1
            if (finishing) {
              assumed = true;
              break;
            }
            st.fill_partial(result, stage);
            return result;
          }

          // Speculatively craft the batch as if `cursor` stays the target
          // throughout.  A carried-over plaintext was already crafted (and
          // budget-checked) against the true state, so it skips the replay.
          pts_.clear();
          unsigned pre_validated = 0;
          if (have_carry) {
            pts_.push_back(carry);
            have_carry = false;
            pre_validated = 1;
          }
          const auto want = static_cast<std::size_t>(
              std::min<std::uint64_t>(batch_size, budget));
          const Xoshiro256 rng_snapshot = rng_;
          while (pts_.size() < want) {
            pts_.push_back(crafter.craft(st.cursor, recovered, stage));
          }
          if (wide) {
            source.observe_wide(std::span<const Block>(pts_), stage,
                                wide_batch_);
          } else {
            source.observe_batch(std::span<const Block>(pts_), stage, batch_);
          }
          last_pt = pts_.back();
          observed_any = true;
          rng_ = rng_snapshot;

          // Replay-consume: re-run the scalar loop's craft sequence against
          // the live masks; element j is valid only if the replayed
          // plaintext equals the speculative one.
          st.reset_in_batch = false;
          std::size_t consumed = 0;
          bool mispredicted = false;
          for (std::size_t j = 0; j < pts_.size(); ++j) {
            if (j >= pre_validated) {
              if (result.total_encryptions >= stage_end) {
                if (finishing) {  // unreachable in practice: want <= budget
                  assumed = true;
                  break;
                }
                if (channel != nullptr) channel->rewind_to(consumed);
                st.fill_partial(result, stage);
                return result;
              }
              const Block pt = crafter.craft(st.cursor, recovered, stage);
              if (!(pt == pts_[j])) {
                // The target moved mid-batch: keep this plaintext for the
                // next submission, drop the stale speculative tail.
                carry = pt;
                have_carry = true;
                mispredicted = true;
                break;
              }
            }
            const Observation obs =
                wide ? wide_batch_.extract(static_cast<unsigned>(j))
                     : batch_[j];
            ++result.total_encryptions;
            ++result.stage_encryptions[stage];
            ++consumed;
            if (obs.dropped) {
              // Detectable probe miss: budget spent, nothing learned.
              ++result.dropped_observations;
              continue;
            }
            const auto nibbles =
                Recovery::pre_key_nibbles(pts_[j], recovered, stage);
            if (finishing) tracker.note_observation(nibbles, obs.present);
            if constexpr (Recovery::kUpdateAllSegments) {
              // Joint exploitation: every segment's S-Box access shares the
              // observation, so one encryption updates all masks at once.
              for (unsigned s = 0; s < Recovery::kSegments; ++s) {
                st.update(s, obs.present, nibbles, params, attempt_extra,
                          result);
              }
            } else {
              // Crafted-plaintext mode: only the targeted segment's pre-key
              // bits are pinned, so only its mask may be updated.
              st.update(st.cursor, obs.present, nibbles, params,
                        attempt_extra, result);
            }
            if (st.unresolved == 0) break;  // stage done; drop the spare tail
          }
          // Discarded speculative elements must leave no trace in the fault
          // channel, or batched and scalar runs would diverge.
          if (channel != nullptr) channel->rewind_to(consumed);
          if (assumed) break;
          batch_size = (mispredicted || st.reset_in_batch)
                           ? 1
                           : std::min(max_batch, batch_size * 2);
        }

        recovered.push_back(assumed ? tracker.assume_stage(st, result)
                                    : Recovery::stage_key_from(st.masks));
      }

      if (finishing && tracker.any_assumed()) {
        // At least one stage ran out of quota and was ML-assumed: the
        // channel alone cannot verify this attempt.  Capture exact
        // pairs and run the residual search inline (serial here — the
        // engine may itself be a pool task; Config::finish_pool
        // parallelizes verification without changing any outcome).
        result.stage_keys = recovered;
        finisher::capture_known_pairs<Recovery>(source, rng_, 2, result);
        finisher::Options finish_options;
        finish_options.max_candidates = config_.finish_max_candidates;
        finish_options.pool = config_.finish_pool;
        finisher::finish_with_residual_search(result, finish_options);
        return result;
      }

      result.stages_resolved = true;
      result.stage_keys = recovered;
      const std::uint64_t last_ct =
          observed_any ? Recovery::fold_ciphertext(source.last_ciphertext())
                       : 0;
      Recovery::finalize(result, source, rng_, last_pt, last_ct);
      if (result.success || !faulted ||
          result.total_encryptions >= config_.max_encryptions) {
        return result;
      }
      // Every stage resolved, but the assembled key failed verification:
      // the channel locked a wrong candidate in.  With budget left, restart
      // the whole recovery (the fault streams keep advancing, so the next
      // attempt sees different noise) and periodically harden elimination.
      ++result.verify_restarts;
      if (config_.backoff_resets > 0 &&
          result.verify_restarts % config_.backoff_resets == 0 &&
          params.base_threshold + attempt_extra < params.threshold_cap) {
        ++attempt_extra;
      }
      recovered.clear();
      result.stage_keys.clear();
      result.stages_resolved = false;
      result.key_verified = false;
    }  // for (;;) — next full-attack attempt
  }

 private:
  ObservationSource<Block>* source_;
  Config config_;
  Xoshiro256 rng_;
  /// Batch buffers, reused across the run (warm after one iteration).
  std::vector<Block> pts_;
  ObservationBatch batch_;
  WideObservationBatch wide_batch_;
};

}  // namespace grinch::target
