// The single generic elimination-based key-recovery engine.
//
// One template replaces the per-cipher attack drivers (Grinch128Attack,
// Present80Attack) with the loop they shared: per stage, keep a candidate
// mask per segment, craft (or draw) a plaintext, observe one monitored
// encryption, and eliminate every candidate whose predicted S-Box index
// was absent from the cache; empty masks signal noise and reset.  When
// all stages resolve, a recovery-specific `finalize` assembles and
// verifies the master key (GIFT walks the key schedule backwards; PRESENT
// brute-forces the 16 bits the cache never sees).
//
// `Recovery` supplies the cipher-specific attack hooks on top of its
// platform traits (full contract in docs/TARGETS.md):
//   using Block / StageKey;
//   static constexpr kName, kSegments, kStages, kCandidatesPerSegment,
//                    kUpdateAllSegments, kDefaultSeed;
//   class Crafter {  // owns any precomputed target-bit lists
//     explicit Crafter(Xoshiro256& rng);
//     Block craft(unsigned segment, const std::vector<StageKey>&, unsigned
//                 stage);
//   };
//   static std::array<unsigned, kSegments> pre_key_nibbles(
//       Block pt, const std::vector<StageKey>&, unsigned stage);
//   static unsigned candidate_index(unsigned nibble, unsigned candidate);
//   static StageKey stage_key_from(const masks array);
//   static void finalize(RecoveryResult&, ObservationSource<Block>&,
//                        Xoshiro256&, Block last_pt, std::uint64_t last_ct);
//
// Hot path (perf notes, see DESIGN.md "Performance"):
//  * Elimination is a word-wise AND: the observation's LineSet word is
//    gathered into a per-candidate keep mask and folded into the
//    CandidateMask in one step — no per-candidate branching, no heap.
//    (The voted path below trades that for per-candidate counters, but
//    only when Config::vote_threshold > 1.)
//  * The first unresolved segment is tracked with a cursor + unresolved
//    count instead of rescanning all segments per encryption.
//  * Encryptions are submitted in speculative batches through
//    observe_batch (Config::max_batch; 1 = strict scalar observe() calls).
//    The engine snapshots the RNG, crafts a batch assuming the current
//    target segment stays unresolved, observes it, then REPLAYS the craft
//    sequence against the real mask state: each batch element is consumed
//    only if its replayed plaintext matches the speculative one, so the
//    consumed plaintext sequence, RNG stream, observation order and
//    encryption counts are byte-identical to the scalar loop for any
//    max_batch.  A mismatch (the target segment resolved mid-batch)
//    discards the rest of the batch and carries the already-crafted
//    plaintext into the next one.  Discarded speculative encryptions are
//    wall-time waste only — they are never counted, and on the
//    flush-per-observation direct-probe platform they cannot alter later
//    observations (every probe verdict is fully determined by the
//    accesses between that observation's own flush and probe).  With
//    fault injection enabled the channel state IS shared across
//    observations, so the engine rewinds the fault channel to the
//    consumed prefix after every batch (FaultyObservationSource::
//    rewind_to), restoring the same guarantee.
//
// Noise robustness (docs/ROBUSTNESS.md): the paper's MPSoC results
// survive a channel with evictions, spurious hits and missed windows.
// With Config::faults set, the engine wraps its source in a
// FaultyObservationSource and degrades gracefully:
//  * voted elimination (Config::vote_threshold, ported from
//    attack/eliminator.h): a candidate dies only after `threshold`
//    absent observations without an intervening presence, dropping the
//    wrong-elimination probability exponentially in the threshold;
//  * detectably dropped observations cost budget but never eliminate;
//  * a segment whose mask empties resets (counted per segment and in
//    RecoveryResult::noise_restarts); a segment that keeps resetting
//    backs off — speculation collapses to scalar and its effective vote
//    threshold escalates (Config::backoff_resets / max_vote_threshold);
//  * a segment stuck without mask progress for Config::stall_limit
//    updates resets too (false presents can wedge a candidate alive);
//  * on budget exhaustion the result is *partial*, not a bare failure:
//    RecoveryResult carries the failed stage, its surviving candidate
//    masks, and the residual brute-force cost in bits.
// With all fault rates zero and the default knobs, every path above is
// inert and the engine is byte-identical to the clean-channel core.
//
// The GIFT-64 paper pipeline with its full noise machinery (cross-round
// solving, statistical elimination) remains in attack::GrinchAttack.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "target/candidate_mask.h"
#include "target/fault_model.h"
#include "target/faulty_source.h"
#include "target/observation.h"

namespace grinch::target {

/// Outcome of one KeyRecoveryEngine run.
template <typename Recovery>
struct RecoveryResult {
  bool success = false;
  bool key_verified = false;
  /// Every stage's candidate masks resolved via the cache channel (for
  /// PRESENT this means RK0; the low 16 bits still need the offline
  /// search, whose failure leaves success false).
  bool stages_resolved = false;
  Key128 recovered_key{};
  std::uint64_t total_encryptions = 0;
  /// Offline work (e.g. PRESENT's 2^16 exhaustive search); 0 when the
  /// recovery needs none.
  std::uint64_t offline_trials = 0;
  std::array<std::uint64_t, Recovery::kStages> stage_encryptions{};
  /// Recovered per-stage keys, one per resolved stage.
  std::vector<typename Recovery::StageKey> stage_keys;

  // --- noisy-channel accounting (all zero on a clean run) ---
  /// Times an observation emptied a segment's mask (or a segment
  /// stalled) and forced a reset, summed over segments and stages.
  std::uint64_t noise_restarts = 0;
  /// Observations the probe detectably missed (Observation::dropped);
  /// they cost budget but carry no information.
  std::uint64_t dropped_observations = 0;
  /// Per-segment reset counts, summed across stages (and attempts).
  std::array<std::uint32_t, Recovery::kSegments> segment_resets{};
  /// Full-attack restarts: every stage resolved but the assembled key
  /// failed verification (the channel lied consistently enough to lock a
  /// wrong candidate in), so the whole recovery re-ran.  Only possible
  /// on a faulty channel.
  std::uint64_t verify_restarts = 0;

  // --- partial-result contract (budget exhaustion) ---
  /// Stage in progress when the budget ran out; == Recovery::kStages
  /// when every stage resolved (then surviving_masks is meaningless).
  unsigned failed_stage = Recovery::kStages;
  /// The failed stage's surviving candidate masks, one per segment.  On
  /// a faulty channel the true candidates are *expected* (not
  /// guaranteed) to survive — voting makes wrong elimination
  /// exponentially unlikely, and resets re-open a wronged segment.
  std::array<std::uint16_t, Recovery::kSegments> surviving_masks{};
  /// log2 of the remaining cache-channel key-search space: surviving
  /// candidates of the failed stage plus the full entropy of the stages
  /// never reached.  0 when all stages resolved (offline_trials still
  /// applies separately).
  double residual_key_bits = 0.0;
};

template <typename Recovery>
class KeyRecoveryEngine {
 public:
  using Block = typename Recovery::Block;

  struct Config {
    std::uint64_t max_encryptions = 100000;
    std::uint64_t seed = Recovery::kDefaultSeed;
    /// Largest speculative batch submitted per observe_batch call; the
    /// engine ramps 1 -> max_batch while speculation holds and resets on
    /// a mispredict.  1 pins the engine to scalar observe() semantics
    /// (which every other value reproduces bit-identically anyway).
    unsigned max_batch = 16;
    /// Absent observations (without an intervening presence) needed to
    /// eliminate a candidate.  1 = the paper's hard elimination, the
    /// word-wise fast path; raise to 2-3 on noisy channels where
    /// evictions fake absences (see attack::eliminate_candidates_voted,
    /// whose semantics this ports segment-locally).
    unsigned vote_threshold = 1;
    /// Ceiling for per-segment threshold escalation under backoff.
    unsigned max_vote_threshold = 6;
    /// A segment resetting this many times within one stage escalates
    /// its effective vote threshold by one (up to max_vote_threshold)
    /// and collapses speculation to scalar for the next batch.  0
    /// disables escalation.
    unsigned backoff_resets = 6;
    /// Updates of one unresolved segment without any mask change before
    /// the engine declares it stalled and resets it.  0 disables stall
    /// detection.  The default never triggers on a clean channel (a
    /// clean observation of an unresolved segment prunes with
    /// probability bounded well away from 0).
    unsigned stall_limit = 512;
    /// Channel fault injection (target/fault_model.h).  All-zero rates =
    /// clean channel: no decorator is interposed and the engine is
    /// byte-identical to the pre-fault-layer core.
    FaultProfile faults;

    /// Knobs documented for noisy channels (docs/ROBUSTNESS.md): voted
    /// elimination at threshold 2, everything else default — backoff and
    /// verify-restart escalation harden the threshold further when the
    /// channel demands it.
    [[nodiscard]] static Config noisy_defaults() {
      Config c;
      c.vote_threshold = 2;
      return c;
    }
  };

  KeyRecoveryEngine(ObservationSource<Block>& source, const Config& config)
      : source_(&source), config_(config), rng_(config.seed) {}

  [[nodiscard]] RecoveryResult<Recovery> run() {
    RecoveryResult<Recovery> result;
    // The fault channel sits between the engine and the platform only
    // when a fault rate is nonzero; a clean run drives the source
    // directly (and the decorator, if interposed, must be rewound to the
    // consumed prefix after every speculative batch — see header).
    FaultyObservationSource<Block> faulty{*source_, config_.faults};
    const bool faulted = config_.faults.any();
    ObservationSource<Block>& source =
        faulted ? static_cast<ObservationSource<Block>&>(faulty) : *source_;
    FaultyObservationSource<Block>* channel = faulted ? &faulty : nullptr;

    typename Recovery::Crafter crafter{rng_};
    std::vector<typename Recovery::StageKey> recovered;
    Block last_pt{};
    bool observed_any = false;
    const unsigned max_batch = std::max(config_.max_batch, 1u);
    const unsigned base_threshold = std::max(config_.vote_threshold, 1u);
    const unsigned threshold_cap =
        std::max(config_.max_vote_threshold, base_threshold);
    // Run-level escalation: every backoff_resets full-attack restarts
    // (wrong key failed verification) harden elimination one notch more.
    unsigned attempt_extra = 0;

    for (;;) {  // one iteration per full-attack attempt
      for (unsigned stage = 0; stage < Recovery::kStages; ++stage) {
        std::array<CandidateMask<Recovery::kCandidatesPerSegment>,
                   Recovery::kSegments>
            masks{};
        // Voted elimination state: per-candidate consecutive-absent
        // counters, per-segment stall/stagnation counters, and per-segment
        // threshold escalation (all inert at vote_threshold 1 on a clean
        // channel).
        std::array<std::array<std::uint8_t, Recovery::kCandidatesPerSegment>,
                   Recovery::kSegments>
            votes{};
        // Presence-evidence tallies for the voted path's resolution
        // confirmation (all candidates share a segment's update count, so
        // raw counts compare directly).
        std::array<std::array<std::uint16_t, Recovery::kCandidatesPerSegment>,
                   Recovery::kSegments>
            presence{};
        std::array<std::uint32_t, Recovery::kSegments> stage_resets{};
        std::array<std::uint32_t, Recovery::kSegments> stagnant{};
        std::array<std::uint8_t, Recovery::kSegments> extra_threshold{};
        // Satellite invariant: `cursor` is the lowest unresolved segment
        // whenever `unresolved > 0`; maintained incrementally by update().
        unsigned unresolved = Recovery::kSegments;
        unsigned cursor = 0;
        bool reset_in_batch = false;

        auto reset_segment = [&](unsigned s) {
          masks[s].reset();
          votes[s] = {};
          presence[s] = {};
          stagnant[s] = 0;
          ++result.noise_restarts;
          ++result.segment_resets[s];
          ++stage_resets[s];
          reset_in_batch = true;
          // Segment-level backoff: a segment that keeps resetting faces a
          // channel its current threshold cannot beat — escalate it.
          if (config_.backoff_resets > 0 &&
              stage_resets[s] % config_.backoff_resets == 0 &&
              base_threshold + attempt_extra + extra_threshold[s] <
                  threshold_cap) {
            ++extra_threshold[s];
          }
        };

        auto update = [&](unsigned s, const LineSet& present,
                          const std::array<unsigned, Recovery::kSegments>&
                              nibbles) {
          // keep bit c: candidate c's predicted S-Box index was present —
          // or absent fewer than `threshold` times in a row (voted mode).
          std::uint16_t keep = 0;
          const std::uint64_t word = present.word();
          const unsigned threshold = std::min(
              threshold_cap, base_threshold + attempt_extra + extra_threshold[s]);
          if (threshold <= 1) {
            for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
              keep |= static_cast<std::uint16_t>(
                  ((word >> Recovery::candidate_index(nibbles[s], c)) & 1u)
                  << c);
            }
          } else {
            for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
              if ((word >> Recovery::candidate_index(nibbles[s], c)) & 1u) {
                votes[s][c] = 0;  // a presence pardons the candidate
                if (presence[s][c] != 0xFFFF) ++presence[s][c];
                keep |= static_cast<std::uint16_t>(1u << c);
              } else {
                votes[s][c] = static_cast<std::uint8_t>(
                    std::min<unsigned>(votes[s][c] + 1u, 255u));
                if (votes[s][c] < threshold) {
                  keep |= static_cast<std::uint16_t>(1u << c);
                }
              }
            }
          }
          const bool was_resolved = masks[s].resolved();
          const std::uint16_t prev = masks[s].mask();
          const std::uint16_t next = static_cast<std::uint16_t>(prev & keep);
          if (next == 0) {
            reset_segment(s);  // noisy observation
          } else {
            masks[s].set_mask(next);
            if (threshold > 1 && !was_resolved && masks[s].resolved()) {
              // Resolution confirmation: the survivor must carry at least
              // as much presence evidence as every candidate it outlived.
              // The true candidate's line is present in (almost) every
              // observation, an impostor's only when another access covers
              // it — so a survivor out-presenced by an eliminated
              // candidate means the channel likely killed the truth, and
              // the segment starts over rather than lock the impostor in.
              const unsigned survivor = masks[s].value();
              for (unsigned c = 0; c < Recovery::kCandidatesPerSegment;
                   ++c) {
                if (presence[s][c] > presence[s][survivor]) {
                  reset_segment(s);
                  break;
                }
              }
            }
            if (!masks[s].resolved()) {
              if (next == prev) {
                // No progress: false presents can keep a wrong candidate
                // alive indefinitely; a reset re-rolls its vote state.  The
                // limit scales with the threshold — voted elimination
                // legitimately spaces mask changes ~threshold times further
                // apart than hard elimination does.
                if (config_.stall_limit > 0 &&
                    ++stagnant[s] >= config_.stall_limit * threshold) {
                  reset_segment(s);
                }
              } else {
                stagnant[s] = 0;
              }
            }
          }
          const bool now_resolved = masks[s].resolved();
          if (was_resolved == now_resolved) return;
          if (now_resolved) {
            --unresolved;
            while (cursor < Recovery::kSegments && masks[cursor].resolved()) {
              ++cursor;
            }
          } else {
            // A reset can re-open a segment already counted resolved (joint
            // mode under noise); pull the cursor back if it jumped past it.
            ++unresolved;
            cursor = std::min(cursor, s);
          }
        };

        // Fills the partial-result fields from this stage's live masks.
        auto partial = [&]() -> RecoveryResult<Recovery>& {
          result.failed_stage = stage;
          double bits = 0.0;
          for (unsigned s = 0; s < Recovery::kSegments; ++s) {
            result.surviving_masks[s] = masks[s].mask();
            bits += std::log2(static_cast<double>(masks[s].size()));
          }
          bits += static_cast<double>(Recovery::kStages - 1 - stage) *
                  Recovery::kSegments *
                  std::log2(static_cast<double>(
                      Recovery::kCandidatesPerSegment));
          result.residual_key_bits = bits;
          return result;
        };

        unsigned batch_size = 1;
        bool have_carry = false;
        Block carry{};
        while (unresolved > 0) {
          const std::uint64_t budget =
              config_.max_encryptions - result.total_encryptions;
          if (budget == 0) return partial();  // a carry implies budget >= 1

          // Speculatively craft the batch as if `cursor` stays the target
          // throughout.  A carried-over plaintext was already crafted (and
          // budget-checked) against the true state, so it skips the replay.
          pts_.clear();
          unsigned pre_validated = 0;
          if (have_carry) {
            pts_.push_back(carry);
            have_carry = false;
            pre_validated = 1;
          }
          const auto want = static_cast<std::size_t>(
              std::min<std::uint64_t>(batch_size, budget));
          const Xoshiro256 rng_snapshot = rng_;
          while (pts_.size() < want) {
            pts_.push_back(crafter.craft(cursor, recovered, stage));
          }
          source.observe_batch(std::span<const Block>(pts_), stage, batch_);
          last_pt = pts_.back();
          observed_any = true;
          rng_ = rng_snapshot;

          // Replay-consume: re-run the scalar loop's craft sequence against
          // the live masks; element j is valid only if the replayed
          // plaintext equals the speculative one.
          reset_in_batch = false;
          std::size_t consumed = 0;
          bool mispredicted = false;
          for (std::size_t j = 0; j < pts_.size(); ++j) {
            if (j >= pre_validated) {
              if (result.total_encryptions >= config_.max_encryptions) {
                if (channel != nullptr) channel->rewind_to(consumed);
                return partial();
              }
              const Block pt = crafter.craft(cursor, recovered, stage);
              if (!(pt == pts_[j])) {
                // The target moved mid-batch: keep this plaintext for the
                // next submission, drop the stale speculative tail.
                carry = pt;
                have_carry = true;
                mispredicted = true;
                break;
              }
            }
            const Observation& obs = batch_[j];
            ++result.total_encryptions;
            ++result.stage_encryptions[stage];
            ++consumed;
            if (obs.dropped) {
              // Detectable probe miss: budget spent, nothing learned.
              ++result.dropped_observations;
              continue;
            }
            const auto nibbles =
                Recovery::pre_key_nibbles(pts_[j], recovered, stage);
            if constexpr (Recovery::kUpdateAllSegments) {
              // Joint exploitation: every segment's S-Box access shares the
              // observation, so one encryption updates all masks at once.
              for (unsigned s = 0; s < Recovery::kSegments; ++s) {
                update(s, obs.present, nibbles);
              }
            } else {
              // Crafted-plaintext mode: only the targeted segment's pre-key
              // bits are pinned, so only its mask may be updated.
              update(cursor, obs.present, nibbles);
            }
            if (unresolved == 0) break;  // stage done; drop the spare tail
          }
          // Discarded speculative elements must leave no trace in the fault
          // channel, or batched and scalar runs would diverge.
          if (channel != nullptr) channel->rewind_to(consumed);
          batch_size = (mispredicted || reset_in_batch)
                           ? 1
                           : std::min(max_batch, batch_size * 2);
        }

        recovered.push_back(Recovery::stage_key_from(masks));
      }

      result.stages_resolved = true;
      result.stage_keys = recovered;
      const std::uint64_t last_ct =
          observed_any ? Recovery::fold_ciphertext(source.last_ciphertext())
                       : 0;
      Recovery::finalize(result, source, rng_, last_pt, last_ct);
      if (result.success || !faulted ||
          result.total_encryptions >= config_.max_encryptions) {
        return result;
      }
      // Every stage resolved, but the assembled key failed verification:
      // the channel locked a wrong candidate in.  With budget left, restart
      // the whole recovery (the fault streams keep advancing, so the next
      // attempt sees different noise) and periodically harden elimination.
      ++result.verify_restarts;
      if (config_.backoff_resets > 0 &&
          result.verify_restarts % config_.backoff_resets == 0 &&
          base_threshold + attempt_extra < threshold_cap) {
        ++attempt_extra;
      }
      recovered.clear();
      result.stage_keys.clear();
      result.stages_resolved = false;
      result.key_verified = false;
    }  // for (;;) — next full-attack attempt
  }

 private:
  ObservationSource<Block>* source_;
  Config config_;
  Xoshiro256 rng_;
  /// Batch buffers, reused across the run (warm after one iteration).
  std::vector<Block> pts_;
  ObservationBatch batch_;
};

}  // namespace grinch::target
