// The 64-wide lockstep observation core.
//
// WideObserveCore runs up to 64 monitored partial-round encryptions in
// lockstep.  It has two modes, chosen once at construction:
//
//  * Fast path (supported() configurations — LRU without a prefetcher):
//    a transposed multi-lane cache (cachesim/lockstep.h).  Per lane, the
//    instrumented victim encryption streams its table accesses straight
//    into the lane's cache state (no materialized access vector — the
//    fused sink replaces the collect-then-replay scalar pipeline), the
//    attacker's flush collapses to pure cycle accounting on the cold
//    lane, and the Flush+Reload probe replays the prober's fixed reload
//    schedule against the lane.  The per-set scans run through the
//    runtime-dispatched SIMD kernel layer (cachesim/kernels/kernels.h).
//    Layered on top is the presence-bitmap shortcut (run_presence): when
//    a per-observation capacity test proves no monitored set could have
//    evicted, the lane cache is bypassed entirely and the verdicts fall
//    out of one 64-bit touched-lines bitmap; when the test trips, the
//    job transparently re-runs through the exact lockstep lane.
//
//  * Per-lane fallback (everything else — FIFO/PLRU/Random replacement,
//    prefetchers): every backing lane owns a scalar cachesim::Cache +
//    FlushReloadProber pair and replays the exact scalar
//    DirectProbePlatform::observe() pipeline (collect accesses, replay
//    rounds around the attacker's flush point, probe).  Lane state
//    persists across run() calls — precisely like the scalar platform's
//    cache persists across a trial's observations — keyed by Job::lane,
//    so callers running multi-trial fleets (target/wide_engine.h) give
//    each trial a stable lane slot and reset_lane_state() it when the
//    trial starts.  supported() therefore means "fast path available",
//    not "wide path available": observe-wide semantics (lanes are
//    *independent* trials) hold in both modes.
//
// Either way the results land transposed in a WideObservationBatch via
// one kernel 64x64 bit transpose (WideObservationBatch::assign_all).
//
// Exactness: on the fast path every verdict, probed_after_round and
// attacker_cycles value is bit-identical to the scalar
// DirectProbePlatform::observe() pipeline (the cold-lane argument is
// spelled out in cachesim/lockstep.h); in fallback mode the same holds
// because each lane literally executes that pipeline against its own
// warm scalar cache.  The conformance suites pin both modes per
// registered cipher (tests/target/wide_conformance_test.cpp).
//
// NOTE: DirectProbePlatform::observe_wide still routes unsupported
// configurations through the transposing ObservationSource default — its
// pinned contract is *sequential* equivalence (one cache, observations
// in order), which per-lane-independent caches intentionally do not
// reproduce.  The fallback mode exists for per-lane-independent callers
// (the wide recovery engine, future defense matrices at width 64).
//
// Jobs carry their own schedule/window/lane, so one core serves both
// platform-internal wide batches (one victim key, one stage — see
// DirectProbePlatform::observe_wide) and the multi-trial wide recovery
// engine (per-lane keys and stages — target/wide_engine.h).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cachesim/cache.h"
#include "cachesim/kernels/kernels.h"
#include "cachesim/lockstep.h"
#include "common/bits.h"
#include "gift/table_gift.h"
#include "target/observation.h"
#include "target/prober.h"
#include "target/table_layout.h"

namespace grinch::target {

/// Stage -> probe-window math, shared by the scalar and wide paths.
/// "Probing round k" for attack stage `s`: the monitored window opens at
/// cipher round s + kFirstKeyDependentRound and the probe lands after k
/// of its rounds executed (observation.h header comment).
struct ProbeWindow {
  unsigned monitored_from = 0;  ///< first round of the monitored window
  unsigned probe_after = 0;     ///< rounds executed when the probe lands
  unsigned emit_rounds = 0;     ///< rounds the victim actually simulates
};

template <typename Traits>
[[nodiscard]] constexpr ProbeWindow probe_window_for(
    unsigned stage, unsigned probing_round) noexcept {
  ProbeWindow w;
  w.monitored_from = stage + Traits::kFirstKeyDependentRound;
  w.probe_after = w.monitored_from + probing_round;
  // The probe never consumes accesses past probe_after, so the victim
  // stops encrypting there (probing-round sweeps may ask for more rounds
  // than the cipher has; probe_after itself stays unclamped in the
  // reported observation).
  w.emit_rounds = std::min(w.probe_after, Traits::kRounds);
  return w;
}

/// Statically-typed sink of the presence-bitmap shortcut (see
/// WideObserveCore::run_presence): instead of driving cache state, it
/// records which monitored lines the window touched (one OR into a
/// 64-bit bitmap — monitored lines form one contiguous line range, so
/// membership is a subtract + compare) and counts the window's accesses
/// per cache set (the overflow detector's input).  No tag scans, no LRU
/// stamps, no per-set slot state.
class PresenceSink final {
 public:
  PresenceSink(std::uint16_t* set_counts, std::uint64_t first_line,
               unsigned n_lines, unsigned instrument_from,
               unsigned line_shift, std::uint64_t set_mask) noexcept
      : set_counts_(set_counts),
        first_line_(first_line),
        set_mask_(set_mask),
        n_lines_(n_lines),
        from_(instrument_from),
        line_shift_(line_shift) {}

  void on_round_begin(unsigned round) noexcept { live_ = round >= from_; }
  void on_access(const gift::TableAccess& access) {
    if (!live_) return;
    const std::uint64_t line = access.addr >> line_shift_;
    ++set_counts_[line & set_mask_];
    const std::uint64_t u = line - first_line_;
    if (u < n_lines_) touched_ |= std::uint64_t{1} << u;
  }
  void on_round_end(unsigned /*round*/) noexcept {}

  /// Bit i = the window touched monitored line first_line + i.
  [[nodiscard]] std::uint64_t touched() const noexcept { return touched_; }

 private:
  std::uint16_t* set_counts_;
  std::uint64_t first_line_;
  std::uint64_t set_mask_;
  std::uint64_t touched_ = 0;
  unsigned n_lines_;
  unsigned from_;
  unsigned line_shift_;
  bool live_ = false;
};

/// Statically-typed sink (TraceSink callback shape, no vtable — the
/// ciphers' templated encrypt_with_schedule inlines it into the round
/// loop) that feeds a lane of the lockstep cache directly from the
/// instrumented encryption.  Two exact filters keep the hot path lean:
///   * rounds before `instrument_from` are skipped — their cache effect
///     is provably irrelevant on supported configs (cachesim/lockstep.h);
///   * accesses whose cache set holds no monitored line are skipped —
///     sets of a set-associative cache are fully independent, so traffic
///     to an unmonitored set can never change a monitored line's
///     presence or a probe latency, and no reported value reads those
///     sets (the lane is reset before every job).
class LockstepSink final {
 public:
  /// `monitored_sets` is a num_sets-bit bitmap (bit s = set s holds a
  /// monitored line) owned by the core; `line_shift`/`sets_shift`/
  /// `set_mask` replicate the lane cache's addr -> (set, tag) mapping.
  /// The session carries the lane (see LockstepCaches::LaneSession); the
  /// set split out for the bitmap filter is reused for the lane access,
  /// so each monitored touch decomposes its address exactly once.
  LockstepSink(cachesim::LockstepCaches::LaneSession& session,
               unsigned instrument_from, const std::uint64_t* monitored_sets,
               unsigned line_shift, unsigned sets_shift,
               std::uint64_t set_mask) noexcept
      : session_(&session),
        monitored_(monitored_sets),
        set_mask_(set_mask),
        from_(instrument_from),
        line_shift_(line_shift),
        sets_shift_(sets_shift) {}

  void on_round_begin(unsigned round) noexcept { live_ = round >= from_; }
  void on_access(const gift::TableAccess& access) {
    if (!live_) return;
    const std::uint64_t line = access.addr >> line_shift_;
    const std::uint64_t set = line & set_mask_;
    if (((monitored_[set >> 6] >> (set & 63)) & 1u) == 0) return;
    (void)session_->access_line(set, line >> sets_shift_);
  }
  void on_round_end(unsigned /*round*/) noexcept {}

 private:
  cachesim::LockstepCaches::LaneSession* session_;
  const std::uint64_t* monitored_;
  std::uint64_t set_mask_;
  unsigned from_;
  unsigned line_shift_;
  unsigned sets_shift_;
  bool live_ = false;
};

template <typename Traits>
class WideObserveCore {
 public:
  using Block = typename Traits::Block;
  using Schedule = typename Traits::TableCipher::Schedule;

  /// One lane's work order.  `instrument_from` is the first round whose
  /// accesses touch the lane cache: window.monitored_from when the
  /// attacker flushes right before the window (use_flush), 0 otherwise
  /// (the flush then precedes round 0, so every emitted round counts).
  /// `lane` is the stable backing-lane slot: irrelevant on the fast path
  /// (lanes are cold per job, any distinct-or-not assignment works) but
  /// load-bearing in fallback mode, where it keys the lane's persistent
  /// scalar cache state — multi-trial callers must give each trial a
  /// stable slot for its lifetime.
  struct Job {
    const Schedule* schedule = nullptr;
    Block plaintext{};
    ProbeWindow window{};
    unsigned instrument_from = 0;
    unsigned lane = 0;
  };

  /// True when the lockstep *fast path* is exact for this configuration.
  /// Wideness itself is always available: unsupported configurations run
  /// the per-lane scalar fallback (header comment).
  [[nodiscard]] static bool supported(
      const cachesim::CacheConfig& config) noexcept {
    return cachesim::LockstepCaches::supports(config);
  }

  WideObserveCore(const cachesim::CacheConfig& cache_config,
                  const TableLayout& layout)
      : cache_config_(cache_config),
        layout_(layout),
        cipher_(layout),
        sbox_rows_(layout.sbox_rows()),
        flush_latency_(cache_config.flush_latency),
        hit_latency_(cache_config.hit_latency),
        miss_latency_(cache_config.miss_latency),
        line_shift_(log2_pow2(cache_config.line_bytes)),
        sets_shift_(log2_pow2(cache_config.num_sets)),
        set_mask_(cache_config.num_sets - 1) {
    if (supported(cache_config)) {
      caches_.emplace(cache_config, WideObservationBatch::kMaxWidth);
    } else {
      lanes_.resize(WideObservationBatch::kMaxWidth);
    }
    // Replicate FlushReloadProber's fixed reload schedule and threshold
    // exactly (same dedup, same descending order) via a scratch instance.
    cachesim::Cache scratch{cache_config};
    const FlushReloadProber prober{scratch, layout};
    rows_ = prober.rows();
    threshold_ = prober.threshold();
    // Bitmap of cache sets holding a monitored line: the sink drops
    // victim traffic to every other set (exact — see LockstepSink).
    monitored_sets_.assign((cache_config.num_sets + 63) / 64, 0);
    for (const auto& row : rows_) {
      const std::uint64_t set = (row.addr >> line_shift_) & set_mask_;
      monitored_sets_[set >> 6] |= std::uint64_t{1} << (set & 63);
    }
    // Probe rows with the addr -> (set, tag) split hoisted out of the
    // per-observation loop (the schedule is fixed for the core's life).
    for (unsigned index = 0; index < probe_rows_.size(); ++index) {
      const auto& row = rows_[index];
      const std::uint64_t line = row.addr >> line_shift_;
      probe_rows_[index] = {line & set_mask_, line >> sets_shift_,
                            row.line_slot, row.reload};
    }
    // Presence-bitmap shortcut metadata (run_presence): the distinct
    // monitored lines are the reload rows.  The shortcut needs them to
    // form one contiguous line range (true for every registered cipher —
    // the monitored region is one contiguous S-Box table) and a per-set
    // counter array small enough to clear per observation.
    std::uint64_t min_line = ~std::uint64_t{0};
    std::uint64_t max_line = 0;
    probe_fills_.assign(cache_config.num_sets, 0);
    for (const auto& row : rows_) {
      if (!row.reload) continue;
      const std::uint64_t line = row.addr >> line_shift_;
      min_line = std::min(min_line, line);
      max_line = std::max(max_line, line);
      ++n_lines_;
      const std::uint64_t set = line & set_mask_;
      if (probe_fills_[set]++ == 0) monitored_set_list_.push_back(set);
    }
    first_line_ = min_line;
    presence_ok_ = caches_.has_value() && n_lines_ > 0 && n_lines_ <= 64 &&
                   max_line - min_line + 1 == n_lines_ &&
                   cache_config.num_sets <= 4096;
    if (presence_ok_) {
      set_counts_.assign(cache_config.num_sets, 0);
      for (const auto& row : rows_) {
        if (!row.reload) continue;
        const std::uint64_t line = row.addr >> line_shift_;
        presence_rows_[n_presence_rows_++] = {
            static_cast<std::uint8_t>(line - min_line),
            static_cast<std::uint8_t>(row.line_slot)};
      }
    }
  }

  /// True when this core runs the lockstep fast path (false: per-lane
  /// scalar fallback).
  [[nodiscard]] bool fast_path() const noexcept { return caches_.has_value(); }

  /// Drops backing lane `lane`'s persistent trial state.  Fast path:
  /// no-op (lanes are cold per job).  Fallback mode: the lane's scalar
  /// cache/prober are rebuilt cold, exactly like a fresh scalar platform
  /// at trial start — callers must reset a slot before reusing it for a
  /// new trial.
  void reset_lane_state(unsigned lane) {
    if (caches_.has_value()) return;
    if (lane < lanes_.size()) lanes_[lane].reset();
  }

  /// Runs jobs[l] on backing lane jobs[l].lane and stores its observation
  /// transposed into out lane l.  When `states_out` is non-null,
  /// states_out[l] receives the victim state after window.emit_rounds
  /// rounds (the ciphertext when emit_rounds == Traits::kRounds).
  /// Backing lanes of one call must be distinct in fallback mode.
  void run(std::span<const Job> jobs, WideObservationBatch& out,
           Block* states_out = nullptr) {
    out.reset(static_cast<unsigned>(jobs.size()), 16);
    // Lane-major scratch for the bulk transposed write; lanes >= width
    // and verdict bits >= rows stay zero (assign_all's pre-condition).
    std::array<std::uint64_t, WideObservationBatch::kMaxWidth> present{};
    std::array<std::uint32_t, WideObservationBatch::kMaxWidth> probed{};
    std::array<std::uint64_t, WideObservationBatch::kMaxWidth> cycles{};
    for (std::size_t l = 0; l < jobs.size(); ++l) {
      const Job& job = jobs[l];
      Block state;
      if (presence_ok_ && run_presence(job, present[l], cycles[l], state)) {
        // Presence-bitmap shortcut succeeded (the common case on sane
        // geometries: no monitored set could have evicted).
      } else if (caches_.has_value()) {
        state = run_fast(job, present[l], cycles[l]);
      } else {
        state = run_fallback(job, present[l], cycles[l]);
      }
      if (states_out != nullptr) states_out[l] = state;
      probed[l] = job.window.probe_after;
    }
    out.assign_all(present.data(), probed.data(), cycles.data());
  }

 private:
  /// One fallback lane: the scalar platform pipeline's cache + prober,
  /// owned per backing lane so lanes stay independent trials.
  struct FallbackLane {
    FallbackLane(const cachesim::CacheConfig& config,
                 const TableLayout& layout)
        : cache(config), prober(cache, layout) {}
    cachesim::Cache cache;
    FlushReloadProber prober;
  };

  /// Presence-bitmap shortcut: the cheapest exact form of the fast path.
  ///
  /// On a cold lane, if no monitored set ever exceeds its capacity, no
  /// eviction can happen anywhere the probe looks — and then LRU order,
  /// stamps and victim selection are all irrelevant: a monitored line is
  /// present at the probe iff the window touched it.  The whole cache
  /// model collapses to one 64-bit "touched" bitmap (monitored lines are
  /// one contiguous line range, so membership is a subtract + compare)
  /// plus per-set access counters for the capacity test:
  ///   window accesses into set s  +  probe fills into s  <=  ways
  /// for every monitored set is a sufficient (conservative: duplicates
  /// and hits counted as fills) condition for zero evictions, checked
  /// after the encryption.  When it fails — deep window on a shallow
  /// cache, pathologically aliased layout — the job re-runs through the
  /// exact lockstep lane (run_fast), so the shortcut never changes a
  /// single bit, only the cost of producing it.  The scalar probe's
  /// latency arithmetic is reproduced exactly, including degenerate
  /// thresholds where hits and misses classify alike.
  ///
  /// Returns false on capacity-test failure (caller falls through to
  /// run_fast).
  bool run_presence(const Job& job, std::uint64_t& present_out,
                    std::uint64_t& cycles_out, Block& state_out) {
    std::fill(set_counts_.begin(), set_counts_.end(),
              static_cast<std::uint16_t>(0));
    PresenceSink sink{set_counts_.data(), first_line_,    n_lines_,
                      job.instrument_from, line_shift_, set_mask_};
    state_out = cipher_.encrypt_with_schedule(
        job.plaintext, *job.schedule, job.window.emit_rounds, &sink);

    const unsigned ways = cache_config_.associativity;
    for (const std::uint32_t set : monitored_set_list_) {
      if (static_cast<unsigned>(set_counts_[set]) + probe_fills_[set] > ways) {
        return false;
      }
    }

    // Verdict per monitored line, replicating the prober's latency
    // classification bit-parallel: touched -> hit latency, untouched ->
    // miss latency, present iff latency <= threshold.
    const std::uint64_t touched = sink.touched();
    const std::uint64_t lines_mask =
        n_lines_ == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << n_lines_) - 1;
    const std::uint64_t hit_mask =
        hit_latency_ <= threshold_ ? ~std::uint64_t{0} : 0;
    const std::uint64_t miss_mask =
        miss_latency_ <= threshold_ ? ~std::uint64_t{0} : 0;
    const std::uint64_t line_bits =
        ((touched & hit_mask) | (~touched & miss_mask)) & lines_mask;

    // Fan the line verdicts out to line slots (the prober's indexing),
    // then to rows — bit-compatible with run_fast's probe loop.
    std::uint64_t line_present = 0;
    for (unsigned i = 0; i < n_presence_rows_; ++i) {
      line_present |= ((line_bits >> presence_rows_[i].line_idx) & 1u)
                      << presence_rows_[i].line_slot;
    }
    std::uint64_t present_word = 0;
    for (unsigned index = 16; index-- > 0;) {
      present_word |= ((line_present >> probe_rows_[index].line_slot) & 1u)
                      << index;
    }

    // Cycles: the flush pass plus one timed reload per distinct line
    // (touched lines reload at hit latency, the rest at miss latency).
    const auto hits = static_cast<std::uint64_t>(std::popcount(touched));
    cycles_out = static_cast<std::uint64_t>(sbox_rows_) * flush_latency_ +
                 hits * hit_latency_ + (n_lines_ - hits) * miss_latency_;
    present_out = present_word;
    return true;
  }

  /// Fast path: fused encrypt-into-lane, cycle-only flush, schedule
  /// replay probe (all against the cold lockstep lane, through one
  /// register-resident LaneSession — pointers and the recency clock are
  /// hoisted for the whole observation).
  Block run_fast(const Job& job, std::uint64_t& present_out,
                 std::uint64_t& cycles_out) {
    const unsigned lane = job.lane;
    caches_->reset_lane(lane);
    cachesim::LockstepCaches::LaneSession session =
        caches_->lane_session(lane);
    // Warm the monitored sets' slot lines while the leading rounds run:
    // every line the sink or the probe can touch belongs to a probe row's
    // set, so this hides the lane's first-touch latency (the pool spans
    // ~1 MiB at full width; the monitored working set per observation is
    // a handful of scattered lines).
    for (const ProbeRow& row : probe_rows_) session.prefetch_set(row.set);

    // Victim window, fused: the encryption streams accesses of rounds
    // [instrument_from, emit_rounds) straight into the lane cache,
    // through the cipher's templated (sink-inlining) round loop.
    LockstepSink sink{session,     job.instrument_from,
                      monitored_sets_.data(), line_shift_,
                      sets_shift_, set_mask_};
    const Block state = cipher_.encrypt_with_schedule(
        job.plaintext, *job.schedule, job.window.emit_rounds, &sink);

    // prepare(): flushing monitored lines from a cold lane is a state
    // no-op (pre-window lines do not exist here), so only the cycles
    // remain.  The count matches the scalar prober whether the flush
    // lands before round 0 (!use_flush) or before the window.
    std::uint64_t cycles =
        static_cast<std::uint64_t>(sbox_rows_) * flush_latency_;

    // probe(): the prober's exact schedule — descending index order,
    // one timed reload per distinct line, verdict fanned out via the
    // line slot; misses fill the lane (the real pollution, too).
    std::uint64_t present_word = 0;
    std::uint32_t line_present = 0;
    for (unsigned index = 16; index-- > 0;) {
      const ProbeRow& row = probe_rows_[index];
      if (row.reload) {
        const bool hit = session.access_line(row.set, row.tag);
        const std::uint64_t latency = hit ? hit_latency_ : miss_latency_;
        cycles += latency;
        if (latency <= threshold_) line_present |= 1u << row.line_slot;
      }
      present_word |= static_cast<std::uint64_t>(
                          (line_present >> row.line_slot) & 1u)
                      << index;
    }
    present_out = present_word;
    cycles_out = cycles;
    return state;
  }

  /// Fallback mode: the scalar DirectProbePlatform::observe() pipeline,
  /// verbatim, against the job's persistent backing lane — collect the
  /// (truncated) access stream, replay rounds around the attacker's
  /// flush point, probe.  The flush lands before the monitored window
  /// exactly when instrument_from says it does (instrument_from != 0 <=>
  /// use_flush with a nonzero window start; when the window starts at
  /// round 0 both orderings are the same access sequence).
  Block run_fallback(const Job& job, std::uint64_t& present_out,
                     std::uint64_t& cycles_out) {
    FallbackLane& lane = fallback_lane(job.lane);
    sink_.clear();
    const Block state = cipher_.encrypt_with_schedule(
        job.plaintext, *job.schedule, job.window.emit_rounds, &sink_);

    constexpr unsigned per_round = Traits::kAccessesPerRound;
    auto replay_rounds = [&](unsigned from, unsigned to) {
      for (std::size_t i = static_cast<std::size_t>(from) * per_round;
           i < static_cast<std::size_t>(to) * per_round &&
           i < sink_.accesses().size();
           ++i) {
        lane.cache.touch(sink_.accesses()[i].addr);
      }
    };

    std::uint64_t cycles = 0;
    const bool flush_before_window = job.instrument_from != 0;
    if (!flush_before_window) cycles += lane.prober.prepare();
    replay_rounds(0, job.window.monitored_from);
    if (flush_before_window) cycles += lane.prober.prepare();
    replay_rounds(job.window.monitored_from, job.window.probe_after);

    const ProbeResult probe = lane.prober.probe();
    present_out = probe.row_present.word();
    cycles_out = cycles + probe.cycles;
    return state;
  }

  [[nodiscard]] FallbackLane& fallback_lane(unsigned slot) {
    assert(slot < lanes_.size());
    if (lanes_[slot] == nullptr) {
      lanes_[slot] = std::make_unique<FallbackLane>(cache_config_, layout_);
    }
    return *lanes_[slot];
  }

  cachesim::CacheConfig cache_config_;
  TableLayout layout_;
  typename Traits::TableCipher cipher_;
  unsigned sbox_rows_;
  std::uint64_t flush_latency_;
  std::uint64_t hit_latency_;
  std::uint64_t miss_latency_;
  unsigned line_shift_;
  unsigned sets_shift_;
  std::uint64_t set_mask_;
  std::uint64_t threshold_ = 0;
  std::array<FlushReloadProber::RowInfo, LineSet::kMaxBits> rows_{};
  /// rows_ with the addr -> (set, tag) split precomputed for the fast
  /// probe loop.
  struct ProbeRow {
    std::uint64_t set = 0;
    std::uint64_t tag = 0;
    unsigned line_slot = 0;
    bool reload = false;
  };
  std::array<ProbeRow, LineSet::kMaxBits> probe_rows_{};
  /// Presence-bitmap shortcut state (run_presence; engaged iff
  /// presence_ok_).  presence_rows_ holds one entry per distinct
  /// monitored line (its index in the contiguous line range and the
  /// prober's line slot); probe_fills_[s] counts the probe's potential
  /// fills into set s; set_counts_ is the per-observation access-counter
  /// scratch; monitored_set_list_ the sets the capacity test inspects.
  struct PresenceRow {
    std::uint8_t line_idx = 0;
    std::uint8_t line_slot = 0;
  };
  std::array<PresenceRow, LineSet::kMaxBits> presence_rows_{};
  unsigned n_presence_rows_ = 0;
  std::uint64_t first_line_ = 0;
  unsigned n_lines_ = 0;
  bool presence_ok_ = false;
  std::vector<std::uint16_t> probe_fills_;
  std::vector<std::uint16_t> set_counts_;
  std::vector<std::uint32_t> monitored_set_list_;
  std::vector<std::uint64_t> monitored_sets_;
  /// Fast path state (engaged iff supported(cache_config_)).
  std::optional<cachesim::LockstepCaches> caches_;
  /// Fallback mode state: per-backing-lane scalar pipelines, created
  /// lazily, reset per trial via reset_lane_state().
  std::vector<std::unique_ptr<FallbackLane>> lanes_;
  /// Shared collect-then-replay scratch of the fallback pipeline.
  gift::VectorTraceSink sink_;
};

}  // namespace grinch::target
