// The 64-wide lockstep observation core.
//
// WideObserveCore runs up to 64 monitored partial-round encryptions in
// lockstep against a transposed multi-lane cache (cachesim/lockstep.h):
// per lane, the instrumented victim encryption streams its table accesses
// straight into the lane's cache state (no materialized access vector —
// the fused sink replaces the collect-then-replay scalar pipeline), the
// attacker's flush collapses to pure cycle accounting on the cold lane,
// and the Flush+Reload probe replays the prober's fixed reload schedule
// against the lane.  The results land transposed in a
// WideObservationBatch.
//
// Exactness: on LockstepCaches::supports() configurations every verdict,
// probed_after_round and attacker_cycles value is bit-identical to the
// scalar DirectProbePlatform::observe() pipeline (the cold-lane argument
// is spelled out in cachesim/lockstep.h; the conformance suites pin it
// per registered cipher).  Callers must gate on supported() and fall
// back to the scalar path otherwise.
//
// Jobs carry their own schedule/window, so one core serves both
// platform-internal wide batches (one victim key, one stage — see
// DirectProbePlatform::observe_wide) and the multi-trial wide recovery
// engine (per-lane keys and stages — target/wide_engine.h).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cachesim/cache.h"
#include "cachesim/lockstep.h"
#include "common/bits.h"
#include "gift/table_gift.h"
#include "target/observation.h"
#include "target/prober.h"
#include "target/table_layout.h"

namespace grinch::target {

/// Stage -> probe-window math, shared by the scalar and wide paths.
/// "Probing round k" for attack stage `s`: the monitored window opens at
/// cipher round s + kFirstKeyDependentRound and the probe lands after k
/// of its rounds executed (observation.h header comment).
struct ProbeWindow {
  unsigned monitored_from = 0;  ///< first round of the monitored window
  unsigned probe_after = 0;     ///< rounds executed when the probe lands
  unsigned emit_rounds = 0;     ///< rounds the victim actually simulates
};

template <typename Traits>
[[nodiscard]] constexpr ProbeWindow probe_window_for(
    unsigned stage, unsigned probing_round) noexcept {
  ProbeWindow w;
  w.monitored_from = stage + Traits::kFirstKeyDependentRound;
  w.probe_after = w.monitored_from + probing_round;
  // The probe never consumes accesses past probe_after, so the victim
  // stops encrypting there (probing-round sweeps may ask for more rounds
  // than the cipher has; probe_after itself stays unclamped in the
  // reported observation).
  w.emit_rounds = std::min(w.probe_after, Traits::kRounds);
  return w;
}

/// Statically-typed sink (TraceSink callback shape, no vtable — the
/// ciphers' templated encrypt_with_schedule inlines it into the round
/// loop) that feeds a lane of the lockstep cache directly from the
/// instrumented encryption.  Two exact filters keep the hot path lean:
///   * rounds before `instrument_from` are skipped — their cache effect
///     is provably irrelevant on supported configs (cachesim/lockstep.h);
///   * accesses whose cache set holds no monitored line are skipped —
///     sets of a set-associative cache are fully independent, so traffic
///     to an unmonitored set can never change a monitored line's
///     presence or a probe latency, and no reported value reads those
///     sets (the lane is reset before every job).
class LockstepSink final {
 public:
  /// `monitored_sets` is a num_sets-bit bitmap (bit s = set s holds a
  /// monitored line) owned by the core; `line_shift`/`set_mask` replicate
  /// the lane cache's addr -> set mapping.
  LockstepSink(cachesim::LockstepCaches& caches, unsigned lane,
               unsigned instrument_from, const std::uint64_t* monitored_sets,
               unsigned line_shift, std::uint64_t set_mask) noexcept
      : caches_(&caches),
        monitored_(monitored_sets),
        set_mask_(set_mask),
        lane_(lane),
        from_(instrument_from),
        line_shift_(line_shift) {}

  void on_round_begin(unsigned round) noexcept { live_ = round >= from_; }
  void on_access(const gift::TableAccess& access) {
    if (!live_) return;
    const std::uint64_t set = (access.addr >> line_shift_) & set_mask_;
    if (((monitored_[set >> 6] >> (set & 63)) & 1u) == 0) return;
    caches_->touch(lane_, access.addr);
  }
  void on_round_end(unsigned /*round*/) noexcept {}

 private:
  cachesim::LockstepCaches* caches_;
  const std::uint64_t* monitored_;
  std::uint64_t set_mask_;
  unsigned lane_;
  unsigned from_;
  unsigned line_shift_;
  bool live_ = false;
};

template <typename Traits>
class WideObserveCore {
 public:
  using Block = typename Traits::Block;
  using Schedule = typename Traits::TableCipher::Schedule;

  /// One lane's work order.  `instrument_from` is the first round whose
  /// accesses touch the lane cache: window.monitored_from when the
  /// attacker flushes right before the window (use_flush), 0 otherwise
  /// (the flush then precedes round 0, so every emitted round counts).
  struct Job {
    const Schedule* schedule = nullptr;
    Block plaintext{};
    ProbeWindow window{};
    unsigned instrument_from = 0;
  };

  /// True when the lockstep fast path is exact for this configuration.
  [[nodiscard]] static bool supported(
      const cachesim::CacheConfig& config) noexcept {
    return cachesim::LockstepCaches::supports(config);
  }

  WideObserveCore(const cachesim::CacheConfig& cache_config,
                  const TableLayout& layout)
      : caches_(cache_config, WideObservationBatch::kMaxWidth),
        cipher_(layout),
        sbox_rows_(layout.sbox_rows()),
        flush_latency_(cache_config.flush_latency),
        hit_latency_(cache_config.hit_latency),
        miss_latency_(cache_config.miss_latency),
        line_shift_(log2_pow2(cache_config.line_bytes)),
        set_mask_(cache_config.num_sets - 1) {
    // Replicate FlushReloadProber's fixed reload schedule and threshold
    // exactly (same dedup, same descending order) via a scratch instance.
    cachesim::Cache scratch{cache_config};
    const FlushReloadProber prober{scratch, layout};
    rows_ = prober.rows();
    threshold_ = prober.threshold();
    // Bitmap of cache sets holding a monitored line: the sink drops
    // victim traffic to every other set (exact — see LockstepSink).
    monitored_sets_.assign((cache_config.num_sets + 63) / 64, 0);
    for (const auto& row : rows_) {
      const std::uint64_t set = (row.addr >> line_shift_) & set_mask_;
      monitored_sets_[set >> 6] |= std::uint64_t{1} << (set & 63);
    }
  }

  /// Runs jobs[l] on lane l and stores its observation transposed into
  /// out lane l.  When `states_out` is non-null, states_out[l] receives
  /// the victim state after window.emit_rounds rounds (the ciphertext
  /// when emit_rounds == Traits::kRounds).
  void run(std::span<const Job> jobs, WideObservationBatch& out,
           Block* states_out = nullptr) {
    out.reset(static_cast<unsigned>(jobs.size()), 16);
    for (std::size_t l = 0; l < jobs.size(); ++l) {
      const Job& job = jobs[l];
      const unsigned lane = static_cast<unsigned>(l);
      caches_.reset_lane(lane);

      // Victim window, fused: the encryption streams accesses of rounds
      // [instrument_from, emit_rounds) straight into the lane cache,
      // through the cipher's templated (sink-inlining) round loop.
      LockstepSink sink{caches_,           lane,        job.instrument_from,
                        monitored_sets_.data(), line_shift_, set_mask_};
      const Block state = cipher_.encrypt_with_schedule(
          job.plaintext, *job.schedule, job.window.emit_rounds, &sink);
      if (states_out != nullptr) states_out[l] = state;

      // prepare(): flushing monitored lines from a cold lane is a state
      // no-op (pre-window lines do not exist here), so only the cycles
      // remain.  The count matches the scalar prober whether the flush
      // lands before round 0 (!use_flush) or before the window.
      std::uint64_t cycles =
          static_cast<std::uint64_t>(sbox_rows_) * flush_latency_;

      // probe(): the prober's exact schedule — descending index order,
      // one timed reload per distinct line, verdict fanned out via the
      // line slot; misses fill the lane (the real pollution, too).
      std::uint64_t present_word = 0;
      std::uint32_t line_present = 0;
      for (unsigned index = 16; index-- > 0;) {
        const auto& row = rows_[index];
        if (row.reload) {
          const bool hit = caches_.access(lane, row.addr);
          const std::uint64_t latency = hit ? hit_latency_ : miss_latency_;
          cycles += latency;
          if (latency <= threshold_) line_present |= 1u << row.line_slot;
        }
        present_word |= static_cast<std::uint64_t>(
                            (line_present >> row.line_slot) & 1u)
                        << index;
      }
      out.set_lane(lane, present_word, job.window.probe_after, cycles);
    }
  }

 private:
  cachesim::LockstepCaches caches_;
  typename Traits::TableCipher cipher_;
  unsigned sbox_rows_;
  std::uint64_t flush_latency_;
  std::uint64_t hit_latency_;
  std::uint64_t miss_latency_;
  unsigned line_shift_;
  std::uint64_t set_mask_;
  std::uint64_t threshold_ = 0;
  std::array<FlushReloadProber::RowInfo, LineSet::kMaxBits> rows_{};
  std::vector<std::uint64_t> monitored_sets_;
};

}  // namespace grinch::target
