// Target description of GIFT-64 for the generic pipeline.
//
// The paper's primary target: 64-bit block, 28 rounds, 16 segments, and —
// crucially — AddRoundKey placed *after* the S-Box layer, so round 0 is
// key-free and attack stage s monitors cipher round s+1 with a fully
// predictable pre-key state.
#pragma once

#include <cstdint>

#include "common/key128.h"
#include "common/rng.h"
#include "gift/gift64.h"
#include "gift/table_gift.h"

namespace grinch::target {

struct Gift64Traits {
  using Block = std::uint64_t;
  using TableCipher = gift::TableGift64;

  static constexpr const char* kName = "gift64";
  static constexpr unsigned kSegments = gift::Gift64::kSegments;
  static constexpr unsigned kRounds = gift::Gift64::kRounds;
  static constexpr unsigned kAccessesPerRound =
      gift::TableGift64::accesses_per_round();
  /// Key mixed AFTER the S-Box layer: round 0 leaks nothing.
  static constexpr unsigned kFirstKeyDependentRound = 1;

  static std::uint64_t fold_ciphertext(Block ct) noexcept { return ct; }
  static Block reference_encrypt(Block pt, const Key128& key) {
    return gift::Gift64::encrypt(pt, key);
  }
  static Block random_block(Xoshiro256& rng) { return rng.block64(); }
  static Block block_from_words(std::uint64_t lo, std::uint64_t hi) noexcept {
    (void)hi;
    return lo;
  }
  /// Restricts a random 128-bit value to the cipher's key space (full).
  static Key128 canonical_key(const Key128& key) noexcept { return key; }
};

}  // namespace grinch::target
