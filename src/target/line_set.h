// Fixed-width bitset over monitored cache lines / S-Box indices.
//
// Observations are produced hundreds of thousands of times per figure, so
// their line-presence sets must not touch the heap.  Every monitored
// quantity in the pipeline is tiny — 16 S-Box rows, at most 64 table
// accesses per round — so one 64-bit word covers every use.  LineSet is a
// drop-in for the std::vector<bool> the pipeline used to carry: same
// assign/size/operator[] surface (including a writable proxy), plus the
// word() accessor that lets the elimination engine fold a whole
// observation into candidate masks with word-wise ANDs (recovery_engine.h).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>

namespace grinch::target {

class LineSet {
 public:
  static constexpr unsigned kMaxBits = 64;

  /// Writable element proxy so `set[i] = true` works like vector<bool>.
  class reference {
   public:
    reference(LineSet& owner, unsigned index) noexcept
        : owner_(&owner), index_(index) {}
    reference& operator=(bool value) noexcept {
      owner_->set(index_, value);
      return *this;
    }
    reference& operator=(const reference& other) noexcept {
      owner_->set(index_, static_cast<bool>(other));
      return *this;
    }
    operator bool() const noexcept { return owner_->test(index_); }

   private:
    LineSet* owner_;
    unsigned index_;
  };

  constexpr LineSet() noexcept = default;
  explicit constexpr LineSet(unsigned size, bool value = false) noexcept {
    assign(size, value);
  }

  /// vector<bool>-compatible reset: `size` entries, all set to `value`.
  constexpr void assign(unsigned size, bool value) noexcept {
    assert(size <= kMaxBits);
    size_ = size;
    bits_ = value ? mask_for(size) : 0;
  }

  [[nodiscard]] constexpr unsigned size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] constexpr bool test(unsigned index) const noexcept {
    assert(index < size_);
    return (bits_ >> index) & 1u;
  }
  constexpr void set(unsigned index, bool value = true) noexcept {
    assert(index < size_);
    const std::uint64_t bit = std::uint64_t{1} << index;
    bits_ = value ? (bits_ | bit) : (bits_ & ~bit);
  }

  [[nodiscard]] constexpr bool operator[](unsigned index) const noexcept {
    return test(index);
  }
  [[nodiscard]] reference operator[](unsigned index) noexcept {
    assert(index < size_);
    return reference{*this, index};
  }

  /// All bits as one word (bit i == element i); bits >= size() are zero.
  [[nodiscard]] constexpr std::uint64_t word() const noexcept { return bits_; }

  /// Rebuilds a set directly from a word (bits >= size are dropped).
  [[nodiscard]] static constexpr LineSet from_word(std::uint64_t bits,
                                                   unsigned size) noexcept {
    assert(size <= kMaxBits);
    LineSet s;
    s.size_ = size;
    s.bits_ = bits & mask_for(size);
    return s;
  }

  /// Number of set entries.
  [[nodiscard]] constexpr unsigned count() const noexcept {
    return static_cast<unsigned>(std::popcount(bits_));
  }

  /// {count(), index of the lowest set entry} in two word ops; the first
  /// index is size() when the set is empty.  Replaces the per-bit
  /// scan-then-count loops of the eliminators.  Already optimal on every
  /// target — std::popcount/std::countr_zero lower to single POPCNT /
  /// TZCNT (or RBIT+CLZ) instructions, so the kernel layer deliberately
  /// leaves this reduction alone.
  [[nodiscard]] constexpr std::pair<unsigned, unsigned> count_and_first()
      const noexcept {
    const unsigned first =
        bits_ ? static_cast<unsigned>(std::countr_zero(bits_)) : size_;
    return {static_cast<unsigned>(std::popcount(bits_)), first};
  }

  /// Scatters this set into a lane-transposed layout: for every row
  /// r < size(), bit `lane` of lanes[r] becomes test(r) (other lanes'
  /// bits are untouched), so lanes[r] accumulates row r's verdict across
  /// up to 64 trials.  Idempotent per lane — re-storing a corrected
  /// observation overwrites the lane's previous bits.
  ///
  /// This is the *single-lane* scatter (store()-style corrections).  When
  /// all 64 lanes change at once the wide path instead runs one 64x64
  /// bit-matrix transpose through the kernel layer — see
  /// WideObservationBatch::assign_all and cachesim/kernels/kernels.h —
  /// which replaces 64 of these per-row loops with 6 SWAR/AVX2 block-swap
  /// passes.
  constexpr void transpose_into(std::uint64_t* lanes, int lane) const noexcept {
    assert(lane >= 0 && lane < static_cast<int>(kMaxBits));
    const std::uint64_t bit = std::uint64_t{1} << lane;
    for (unsigned r = 0; r < size_; ++r) {
      lanes[r] = ((bits_ >> r) & 1u) ? (lanes[r] | bit) : (lanes[r] & ~bit);
    }
  }

  friend constexpr bool operator==(const LineSet&, const LineSet&) noexcept =
      default;

 private:
  static constexpr std::uint64_t mask_for(unsigned size) noexcept {
    return size >= kMaxBits ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << size) - 1;
  }

  std::uint64_t bits_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace grinch::target
