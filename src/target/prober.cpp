#include "target/prober.h"

#include <cassert>
#include <map>

namespace grinch::target {
namespace {

std::uint64_t hit_threshold(const cachesim::Cache& cache) {
  // Anything strictly faster than a miss is a hit; the midpoint keeps the
  // comparison robust if hierarchies add intermediate latencies.
  return (cache.config().hit_latency + cache.config().miss_latency) / 2;
}

}  // namespace

// ------------------------------------------------------- Flush+Reload --

FlushReloadProber::FlushReloadProber(cachesim::Cache& cache,
                                     const TableLayout& layout)
    : cache_(&cache), layout_(layout), threshold_(hit_threshold(cache)) {
  // Reloads run in DESCENDING address order — the classic counter-measure
  // against sequential prefetchers, whose forward next-line fetches would
  // otherwise make every later reload a false hit.  Only one timed reload
  // per distinct cache *line* (rows can share a line when line_bytes >
  // row_bytes; a second access to the same line would always hit and
  // corrupt the measurement); the verdict fans out to every index whose
  // row lives on that line.  The schedule is fixed by layout and line
  // size, so resolve it here once: per index, its address, a dense slot
  // for its line, and whether it is the line's first index in probe order.
  std::map<std::uint64_t, std::uint8_t> line_slots;
  for (unsigned index = 16; index-- > 0;) {
    const std::uint64_t addr = layout_.sbox_row_addr(index);
    const std::uint64_t base = cache_->line_base(addr);
    const auto [it, fresh] = line_slots.emplace(
        base, static_cast<std::uint8_t>(line_slots.size()));
    rows_[index] = RowInfo{addr, it->second, fresh};
  }
}

std::uint64_t FlushReloadProber::prepare() {
  std::uint64_t cycles = 0;
  for (unsigned row = 0; row < layout_.sbox_rows(); ++row) {
    cache_->flush_line(layout_.sbox_base + row * layout_.sbox_row_bytes);
    cycles += cache_->config().flush_latency;
  }
  return cycles;
}

ProbeResult FlushReloadProber::probe() {
  ProbeResult result;
  result.row_present.assign(16, false);
  std::uint32_t line_present = 0;  // bit = line slot, per rows_ schedule
  for (unsigned index = 16; index-- > 0;) {
    const RowInfo& row = rows_[index];
    if (row.reload) {
      const cachesim::AccessResult r = cache_->access(row.addr);
      result.cycles += r.latency;
      if (r.latency <= threshold_) line_present |= 1u << row.line_slot;
    }
    result.row_present.set(index, (line_present >> row.line_slot) & 1u);
  }
  return result;
}

// -------------------------------------------------------- Prime+Probe --

PrimeProbeProber::PrimeProbeProber(cachesim::Cache& cache,
                                   const TableLayout& layout,
                                   std::uint64_t attacker_base)
    : cache_(&cache), layout_(layout), threshold_(hit_threshold(cache)) {
  // An eviction address maps to the same set as the monitored row but with
  // a distinct tag per way: offset by whole cache strides.
  const std::uint64_t stride = static_cast<std::uint64_t>(
      cache_->config().line_bytes) * cache_->config().num_sets;
  const unsigned ways = cache_->config().associativity;
  auto eviction_addr = [&](unsigned row, unsigned way) {
    const std::uint64_t row_addr =
        layout_.sbox_base + row * layout_.sbox_row_bytes;
    return attacker_base + (row_addr % stride) + way * stride;
  };

  // prepare() primes each distinct set once, walking rows in ascending
  // order; resolve that dedup here into a flat access sequence.
  std::map<std::uint64_t, std::uint8_t> prime_slots;
  for (unsigned row = 0; row < layout_.sbox_rows(); ++row) {
    const std::uint64_t set = cache_->set_index(
        layout_.sbox_base + row * layout_.sbox_row_bytes);
    if (!prime_slots.emplace(set, 0).second) continue;  // set already primed
    for (unsigned way = 0; way < ways; ++way) {
      prime_addrs_.push_back(eviction_addr(row, way));
    }
  }

  // probe() measures each distinct set once, walking indices in ascending
  // order (Prime+Probe resolves sets, not tags), and fans the verdict out
  // to every index whose row maps to that set.
  std::map<std::uint64_t, std::uint8_t> set_slots;
  for (unsigned index = 0; index < 16; ++index) {
    const unsigned row = index / layout_.sbox_entries_per_row;
    const std::uint64_t set = cache_->set_index(
        layout_.sbox_base + row * layout_.sbox_row_bytes);
    const auto [it, fresh] =
        set_slots.emplace(set, static_cast<std::uint8_t>(set_slots.size()));
    index_info_[index] = IndexInfo{
        it->second, fresh, static_cast<std::uint16_t>(probe_addrs_.size())};
    if (fresh) {
      for (unsigned way = 0; way < ways; ++way) {
        probe_addrs_.push_back(eviction_addr(row, way));
      }
    }
  }
}

std::uint64_t PrimeProbeProber::prepare() {
  std::uint64_t cycles = 0;
  for (const std::uint64_t addr : prime_addrs_) {
    cycles += cache_->access(addr).latency;
  }
  return cycles;
}

ProbeResult PrimeProbeProber::probe() {
  ProbeResult result;
  result.row_present.assign(16, false);
  const unsigned ways = cache_->config().associativity;
  std::uint32_t set_touched = 0;  // bit = set slot, per index_info_ schedule
  for (unsigned index = 0; index < 16; ++index) {
    const IndexInfo& info = index_info_[index];
    if (info.measure) {
      bool touched = false;
      for (unsigned way = 0; way < ways; ++way) {
        const cachesim::AccessResult r =
            cache_->access(probe_addrs_[info.addr_begin + way]);
        result.cycles += r.latency;
        if (r.latency > threshold_) touched = true;
      }
      if (touched) set_touched |= 1u << info.set_slot;
    }
    result.row_present.set(index, (set_touched >> info.set_slot) & 1u);
  }
  return result;
}

}  // namespace grinch::target
