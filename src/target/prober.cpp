#include "target/prober.h"

#include <map>
#include <set>

namespace grinch::target {
namespace {

std::uint64_t hit_threshold(const cachesim::Cache& cache) {
  // Anything strictly faster than a miss is a hit; the midpoint keeps the
  // comparison robust if hierarchies add intermediate latencies.
  return (cache.config().hit_latency + cache.config().miss_latency) / 2;
}

}  // namespace

// ------------------------------------------------------- Flush+Reload --

FlushReloadProber::FlushReloadProber(cachesim::Cache& cache,
                                     const TableLayout& layout)
    : cache_(&cache), layout_(layout), threshold_(hit_threshold(cache)) {}

std::uint64_t FlushReloadProber::prepare() {
  std::uint64_t cycles = 0;
  for (unsigned row = 0; row < layout_.sbox_rows(); ++row) {
    cache_->flush_line(layout_.sbox_base + row * layout_.sbox_row_bytes);
    cycles += cache_->config().flush_latency;
  }
  return cycles;
}

ProbeResult FlushReloadProber::probe() {
  ProbeResult result;
  result.row_present.assign(16, false);
  // One timed reload per distinct cache *line* (rows can share a line when
  // line_bytes > row_bytes; a second access to the same line would always
  // hit and corrupt the measurement), then fan the verdict out to every
  // index whose row lives on that line.  Reloads run in DESCENDING address
  // order — the classic counter-measure against sequential prefetchers,
  // whose forward next-line fetches would otherwise make every later
  // reload a false hit.
  std::map<std::uint64_t, bool> line_present;
  for (unsigned index = 16; index-- > 0;) {
    const std::uint64_t addr = layout_.sbox_row_addr(index);
    const std::uint64_t base = cache_->line_base(addr);
    const auto it = line_present.find(base);
    if (it == line_present.end()) {
      const cachesim::AccessResult r = cache_->access(addr);
      result.cycles += r.latency;
      line_present[base] = r.latency <= threshold_;
    }
    result.row_present[index] = line_present[base];
  }
  return result;
}

// -------------------------------------------------------- Prime+Probe --

PrimeProbeProber::PrimeProbeProber(cachesim::Cache& cache,
                                   const TableLayout& layout,
                                   std::uint64_t attacker_base)
    : cache_(&cache),
      layout_(layout),
      attacker_base_(attacker_base),
      threshold_(hit_threshold(cache)) {}

std::uint64_t PrimeProbeProber::prime_addr(unsigned row, unsigned way) const {
  // An address that maps to the same set as the monitored row but with a
  // distinct tag per way: offset by whole cache strides.
  const std::uint64_t row_addr =
      layout_.sbox_base + row * layout_.sbox_row_bytes;
  const std::uint64_t stride = static_cast<std::uint64_t>(
      cache_->config().line_bytes) * cache_->config().num_sets;
  return attacker_base_ + (row_addr % stride) + way * stride;
}

std::uint64_t PrimeProbeProber::prepare() {
  std::uint64_t cycles = 0;
  std::set<std::uint64_t> primed_sets;
  for (unsigned row = 0; row < layout_.sbox_rows(); ++row) {
    const std::uint64_t set = cache_->set_index(
        layout_.sbox_base + row * layout_.sbox_row_bytes);
    if (!primed_sets.insert(set).second) continue;  // set already primed
    for (unsigned way = 0; way < cache_->config().associativity; ++way) {
      cycles += cache_->access(prime_addr(row, way)).latency;
    }
  }
  return cycles;
}

ProbeResult PrimeProbeProber::probe() {
  ProbeResult result;
  result.row_present.assign(16, false);
  // Determine once per monitored *set* whether it lost a primed line,
  // then report every index whose row maps to a touched set —
  // Prime+Probe resolves sets, not tags.
  std::map<std::uint64_t, bool> set_touched;
  for (unsigned index = 0; index < 16; ++index) {
    const unsigned row = index / layout_.sbox_entries_per_row;
    const std::uint64_t set = cache_->set_index(
        layout_.sbox_base + row * layout_.sbox_row_bytes);
    const auto it = set_touched.find(set);
    if (it == set_touched.end()) {
      bool touched = false;
      for (unsigned way = 0; way < cache_->config().associativity; ++way) {
        const cachesim::AccessResult r = cache_->access(prime_addr(row, way));
        result.cycles += r.latency;
        if (r.latency > threshold_) touched = true;
      }
      set_touched[set] = touched;
    }
    result.row_present[index] = set_touched[set];
  }
  return result;
}

}  // namespace grinch::target
