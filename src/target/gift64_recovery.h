// GRINCH attack hooks for GIFT-64 on the generic pipeline.
//
// The paper's full five-step attack with its noise machinery (voting,
// cross-round solving, statistical elimination, precision probing) lives
// in attack::GrinchAttack and is unchanged; this adapter exposes the
// clean-channel core of the same mathematics (Algorithms 1-2, the pre-key
// predictor, Step-4 key assembly) through the trait contract, so GIFT-64
// runs on the identical engine as GIFT-128 and PRESENT-80.
//
// Header-only on purpose: it borrows the Algorithm 1/2 implementations
// from src/attack/, which sits *above* the target layer — any translation
// unit using Gift64Recovery must link grinch_attack (the target library
// itself never includes this header).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "attack/key_recovery.h"
#include "attack/plaintext_crafter.h"
#include "attack/predictor.h"
#include "attack/target_bits.h"
#include "common/key128.h"
#include "common/rng.h"
#include "gift/key_schedule.h"
#include "target/candidate_mask.h"
#include "target/gift64_traits.h"
#include "target/observation.h"
#include "target/recovery_engine.h"

namespace grinch::target {

/// Attack hooks driving KeyRecoveryEngine<Gift64Recovery>: four stages of
/// crafted-plaintext elimination recover 32 key bits each.
struct Gift64Recovery : Gift64Traits {
  using StageKey = gift::RoundKey64;

  static constexpr unsigned kStages = 4;
  static constexpr unsigned kCandidatesPerSegment = 4;
  static constexpr bool kUpdateAllSegments = false;
  static constexpr std::uint64_t kDefaultSeed = 0x64A11C;

  class Crafter {
   public:
    explicit Crafter(Xoshiro256& rng) : inner_(rng) {
      for (unsigned s = 0; s < 16; ++s) targets_[s] = attack::set_target_bits(s);
    }
    [[nodiscard]] std::uint64_t craft(
        unsigned segment, const std::vector<gift::RoundKey64>& recovered,
        unsigned stage) {
      return inner_.craft_plaintext(targets_[segment], recovered, stage);
    }

   private:
    attack::PlaintextCrafter inner_;
    std::array<attack::TargetBits, 16> targets_{};
  };

  static std::array<unsigned, 16> pre_key_nibbles(
      std::uint64_t plaintext,
      const std::vector<gift::RoundKey64>& known_round_keys, unsigned stage) {
    return attack::pre_key_nibbles(plaintext, known_round_keys, stage);
  }

  /// index = n XOR c: the key pair (u, v) lands on nibble bits 0..1.
  static unsigned candidate_index(unsigned nibble, unsigned c) noexcept {
    return (nibble ^ c) & 0xF;
  }

  static gift::RoundKey64 stage_key_from(
      const std::array<CandidateMask<4>, 16>& masks) {
    gift::RoundKey64 rk{};
    for (unsigned s = 0; s < 16; ++s) {
      const unsigned c = masks[s].value();
      rk.u |= static_cast<std::uint16_t>(((c >> 1) & 1u) << s);
      rk.v |= static_cast<std::uint16_t>((c & 1u) << s);
    }
    return rk;
  }

  /// Residual-finisher verification hook (src/finisher/finisher.h):
  /// assembles a candidate's master key and checks it against every
  /// known plaintext/ciphertext pair with the reference cipher.
  static bool finisher_verify(std::span<const gift::RoundKey64> stage_keys,
                              std::span<const std::uint64_t> pts,
                              std::span<const std::uint64_t> cts,
                              Key128& key_out,
                              std::uint64_t& offline_trials) {
    const Key128 key = attack::assemble_master_key(stage_keys);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      ++offline_trials;
      if (reference_encrypt(pts[i], key) != cts[i]) return false;
    }
    key_out = key;
    return true;
  }

  /// Assembles the master key (Step 4, via the symbolic key schedule) and
  /// verifies it against one more observed encryption.
  static void finalize(RecoveryResult<Gift64Recovery>& result,
                       ObservationSource<std::uint64_t>& source,
                       Xoshiro256& rng, std::uint64_t /*last_pt*/,
                       std::uint64_t /*last_ct*/) {
    result.recovered_key = attack::assemble_master_key(result.stage_keys);
    const std::uint64_t check_pt = rng.block64();
    (void)source.observe(check_pt, 0);
    ++result.total_encryptions;
    result.key_verified =
        reference_encrypt(check_pt, result.recovered_key) ==
        source.last_ciphertext();
    result.success = result.key_verified;
  }
};

}  // namespace grinch::target
