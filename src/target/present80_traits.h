// Target description of PRESENT-80 for the generic pipeline.
//
// GIFT's ISO-standardised ancestor: 64-bit block, 31 rounds, 16 segments,
// and the round key mixed *before* the S-Box layer — so cipher round 0 is
// already key-dependent and the attack monitors it directly (stage 0 maps
// to round 0, no crafted plaintexts needed).
#pragma once

#include <cstdint>

#include "common/key128.h"
#include "common/rng.h"
#include "present/present.h"
#include "present/table_present.h"

namespace grinch::target {

struct Present80Traits {
  using Block = std::uint64_t;
  using TableCipher = present::TablePresent80;

  static constexpr const char* kName = "present80";
  static constexpr unsigned kSegments = 16;
  static constexpr unsigned kRounds = present::Present80::kRounds;
  /// 16 S-Box + 16 pLayer-mask lookups per round (mirrors GIFT's LUT
  /// implementation style).
  static constexpr unsigned kAccessesPerRound = 32;
  /// Key mixed BEFORE the S-Box layer: round 0 leaks.
  static constexpr unsigned kFirstKeyDependentRound = 0;

  static std::uint64_t fold_ciphertext(Block ct) noexcept { return ct; }
  static Block reference_encrypt(Block pt, const Key128& key) {
    return present::Present80::encrypt(pt, key);
  }
  static Block random_block(Xoshiro256& rng) { return rng.block64(); }
  static Block block_from_words(std::uint64_t lo, std::uint64_t hi) noexcept {
    (void)hi;
    return lo;
  }
  /// Restricts a random 128-bit value to PRESENT's 80-bit key space.
  static Key128 canonical_key(const Key128& key) noexcept {
    return Key128{key.hi & 0xFFFF, key.lo};
  }
};

}  // namespace grinch::target
