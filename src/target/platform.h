// The single generic direct-probe observation platform.
//
// One template replaces the three per-cipher platforms the repo used to
// carry (GIFT-64 / GIFT-128 / PRESENT-80 each had a copy): the victim
// encrypts with its instrumented table cipher, the access stream is
// replayed against the simulated cache around the attacker's prepare /
// probe points, and a Flush+Reload probe reports line presence.
//
// `Traits` describes the cipher-specific facts (see docs/TARGETS.md):
//   using Block / TableCipher;
//   static constexpr unsigned kAccessesPerRound;
//   static constexpr unsigned kRounds;
//   static constexpr unsigned kFirstKeyDependentRound;  // GIFT 1, PRESENT 0
//   static std::uint64_t fold_ciphertext(Block);
//
// Probing-round semantics: attack stage `s` monitors cipher round
// s + kFirstKeyDependentRound (GIFT mixes the key *after* the S-Box
// layer, so its round 0 is key-free and stage s monitors round s+1;
// PRESENT mixes it *before*, so stage 0 monitors round 0 directly).
// "Probing round k" means the probe observes the cache after k rounds of
// that monitored window have executed.
//
// Hot path (the partial-round fast path, docs/TARGETS.md): the probe only
// consumes accesses up to probed_after_round, so the victim encryption is
// truncated there — observe() emits min(monitored_from + probing_round,
// kRounds) rounds from a schedule precomputed at construction, and the
// full ciphertext is derived lazily in last_ciphertext(), i.e. only for
// the final verification encryptions.  The truncated trace is the exact
// prefix of the full one (asserted per cipher by
// tests/target/partial_round_test.cpp), so every observation bit, cycle
// count and cache transition is identical to simulating all rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cachesim/cache.h"
#include "common/key128.h"
#include "gift/table_gift.h"
#include "target/observation.h"
#include "target/prober.h"
#include "target/wide_observe.h"

namespace grinch::target {

template <typename Traits>
class DirectProbePlatform final
    : public ObservationSource<typename Traits::Block> {
 public:
  using Block = typename Traits::Block;

  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    TableLayout layout;
    unsigned probing_round = 1;  ///< k in the semantics above (>= 1)
    bool use_flush = true;
  };

  DirectProbePlatform(const Config& config, const Key128& victim_key)
      : config_(config),
        key_(victim_key),
        cache_(config.cache),
        cipher_(config.layout),
        prober_(cache_, config.layout),
        schedule_(cipher_.make_schedule(victim_key)),
        line_ids_(
            compute_index_line_ids(config.layout, config.cache.line_bytes)) {}

  Observation observe(Block plaintext, unsigned stage) override {
    return observe_at(plaintext, window_for(stage));
  }

  void observe_batch(std::span<const Block> plaintexts, unsigned stage,
                     ObservationBatch& out) override {
    // The probe window depends only on the stage: derive it once for the
    // whole batch; each element then runs the same scalar pipeline (warm
    // sink, warm prober schedule), so results are bit-identical to
    // per-element observe() calls.
    const ProbeWindow window = window_for(stage);
    out.resize(plaintexts.size());
    for (std::size_t i = 0; i < plaintexts.size(); ++i) {
      out[i] = observe_at(plaintexts[i], window);
    }
  }

  void observe_wide(std::span<const Block> plaintexts, unsigned stage,
                    WideObservationBatch& out) override {
    // The lockstep fast path is exact only on LRU-without-prefetch
    // configurations (cachesim/lockstep.h); everything else transposes
    // the scalar batch through the base-class default.  Deliberately NOT
    // the core's per-lane fallback mode: this method's pinned contract
    // is *sequential* equivalence (out[i] == the i-th observe() on this
    // platform's one cache), which independent per-lane caches do not
    // reproduce — per-lane wideness on unsupported configs lives in the
    // multi-trial engine (target/wide_engine.h).
    if (!WideObserveCore<Traits>::supported(config_.cache) ||
        plaintexts.empty()) {
      ObservationSource<Block>::observe_wide(plaintexts, stage, out);
      return;
    }
    if (wide_core_ == nullptr) {
      wide_core_ = std::make_unique<WideObserveCore<Traits>>(config_.cache,
                                                             config_.layout);
    }
    const ProbeWindow window = window_for(stage);
    const unsigned instrument_from =
        config_.use_flush ? window.monitored_from : 0;
    wide_jobs_.resize(plaintexts.size());
    for (std::size_t i = 0; i < plaintexts.size(); ++i) {
      wide_jobs_[i] = {&schedule_, plaintexts[i], window, instrument_from,
                       static_cast<unsigned>(i)};
    }
    wide_states_.resize(plaintexts.size());
    wide_core_->run(std::span<const typename WideObserveCore<Traits>::Job>(
                        wide_jobs_),
                    out, wide_states_.data());
    // Same bookkeeping as the scalar pipeline's final element.
    last_pt_ = plaintexts.back();
    last_ct_valid_ = window.emit_rounds >= Traits::kRounds;
    if (last_ct_valid_) last_ct_ = wide_states_.back();
  }

  [[nodiscard]] const TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override {
    return line_ids_;  // computed once at construction
  }
  [[nodiscard]] Block last_ciphertext() const override {
    if (!last_ct_valid_) {
      // Complete the truncated encryption functionally (no sink, no cache
      // traffic — the simulated cache state is untouched).
      last_ct_ = cipher_.encrypt_with_schedule(last_pt_, schedule_,
                                               Traits::kRounds, nullptr);
      last_ct_valid_ = true;
    }
    return last_ct_;
  }

 private:
  [[nodiscard]] ProbeWindow window_for(unsigned stage) const noexcept {
    return probe_window_for<Traits>(stage, config_.probing_round);
  }

  Observation observe_at(Block plaintext, const ProbeWindow& window) {
    // Collect the (truncated) access stream once, then replay rounds
    // against the cache around the attacker's flush/probe points.  The
    // sink is reused across calls, so it stops allocating after the first
    // encryption.
    sink_.clear();
    const Block state = cipher_.encrypt_with_schedule(
        plaintext, schedule_, window.emit_rounds, &sink_);
    last_pt_ = plaintext;
    // A full-depth run already is the ciphertext; shorter ones complete
    // lazily in last_ciphertext().
    last_ct_valid_ = window.emit_rounds >= Traits::kRounds;
    if (last_ct_valid_) last_ct_ = state;

    constexpr unsigned per_round = Traits::kAccessesPerRound;
    auto replay_rounds = [&](unsigned from, unsigned to) {
      for (std::size_t i = static_cast<std::size_t>(from) * per_round;
           i < static_cast<std::size_t>(to) * per_round &&
           i < sink_.accesses().size();
           ++i) {
        cache_.touch(sink_.accesses()[i].addr);
      }
    };

    std::uint64_t attacker_cycles = 0;
    if (!config_.use_flush) attacker_cycles += prober_.prepare();
    replay_rounds(0, window.monitored_from);
    if (config_.use_flush) {
      // The attacker flushes the monitored lines right before the
      // monitored round.
      attacker_cycles += prober_.prepare();
    }
    replay_rounds(window.monitored_from, window.probe_after);

    const ProbeResult probe = prober_.probe();
    Observation o;
    o.present = probe.row_present;
    o.probed_after_round = window.probe_after;
    o.attacker_cycles = attacker_cycles + probe.cycles;
    return o;
  }

  Config config_;
  Key128 key_;
  cachesim::Cache cache_;
  typename Traits::TableCipher cipher_;
  FlushReloadProber prober_;
  typename Traits::TableCipher::Schedule schedule_;
  std::vector<unsigned> line_ids_;
  gift::VectorTraceSink sink_;
  /// Wide-path state, created on first observe_wide (nullptr until then,
  /// so scalar-only users pay nothing).
  std::unique_ptr<WideObserveCore<Traits>> wide_core_;
  std::vector<typename WideObserveCore<Traits>::Job> wide_jobs_;
  std::vector<Block> wide_states_;
  Block last_pt_{};
  mutable Block last_ct_{};
  mutable bool last_ct_valid_ = true;  ///< Block{} before any observation
};

}  // namespace grinch::target
