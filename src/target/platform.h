// The single generic direct-probe observation platform.
//
// One template replaces the three per-cipher platforms the repo used to
// carry (GIFT-64 / GIFT-128 / PRESENT-80 each had a copy): the victim
// encrypts with its instrumented table cipher, the access stream is
// replayed against the simulated cache around the attacker's prepare /
// probe points, and a Flush+Reload probe reports line presence.
//
// `Traits` describes the cipher-specific facts (see docs/TARGETS.md):
//   using Block / TableCipher;
//   static constexpr unsigned kAccessesPerRound;
//   static constexpr unsigned kFirstKeyDependentRound;  // GIFT 1, PRESENT 0
//   static std::uint64_t fold_ciphertext(Block);
//
// Probing-round semantics: attack stage `s` monitors cipher round
// s + kFirstKeyDependentRound (GIFT mixes the key *after* the S-Box
// layer, so its round 0 is key-free and stage s monitors round s+1;
// PRESENT mixes it *before*, so stage 0 monitors round 0 directly).
// "Probing round k" means the probe observes the cache after k rounds of
// that monitored window have executed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "common/key128.h"
#include "gift/table_gift.h"
#include "target/observation.h"
#include "target/prober.h"

namespace grinch::target {

template <typename Traits>
class DirectProbePlatform final
    : public ObservationSource<typename Traits::Block> {
 public:
  using Block = typename Traits::Block;

  struct Config {
    cachesim::CacheConfig cache = cachesim::CacheConfig::paper_default();
    TableLayout layout;
    unsigned probing_round = 1;  ///< k in the semantics above (>= 1)
    bool use_flush = true;
  };

  DirectProbePlatform(const Config& config, const Key128& victim_key)
      : config_(config),
        key_(victim_key),
        cache_(config.cache),
        cipher_(config.layout),
        prober_(cache_, config.layout) {}

  Observation observe(Block plaintext, unsigned stage) override {
    // Collect the full access stream once, then replay rounds against the
    // cache around the attacker's flush/probe points.  The sink is reused
    // across calls, so it stops allocating after the first encryption.
    sink_.clear();
    const Block ct = cipher_.encrypt(plaintext, key_, &sink_);
    constexpr unsigned per_round = Traits::kAccessesPerRound;

    auto replay_rounds = [&](unsigned from, unsigned to) {
      for (std::size_t i = static_cast<std::size_t>(from) * per_round;
           i < static_cast<std::size_t>(to) * per_round &&
           i < sink_.accesses().size();
           ++i) {
        (void)cache_.access(sink_.accesses()[i].addr);
      }
    };

    std::uint64_t attacker_cycles = 0;
    const unsigned monitored_from = stage + Traits::kFirstKeyDependentRound;
    if (!config_.use_flush) attacker_cycles += prober_.prepare();
    replay_rounds(0, monitored_from);
    if (config_.use_flush) {
      // The attacker flushes the monitored lines right before the
      // monitored round.
      attacker_cycles += prober_.prepare();
    }

    const unsigned probe_after = monitored_from + config_.probing_round;
    replay_rounds(monitored_from, probe_after);

    const ProbeResult probe = prober_.probe();
    Observation o;
    o.present = probe.row_present;
    o.probed_after_round = probe_after;
    o.attacker_cycles = attacker_cycles + probe.cycles;
    o.ciphertext = Traits::fold_ciphertext(ct);
    last_ciphertext_ = ct;
    return o;
  }

  [[nodiscard]] const TableLayout& layout() const override {
    return config_.layout;
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override {
    return compute_index_line_ids(config_.layout, config_.cache.line_bytes);
  }
  [[nodiscard]] Block last_ciphertext() const override {
    return last_ciphertext_;
  }

 private:
  Config config_;
  Key128 key_;
  cachesim::Cache cache_;
  typename Traits::TableCipher cipher_;
  FlushReloadProber prober_;
  gift::VectorTraceSink sink_;
  Block last_ciphertext_{};
};

}  // namespace grinch::target
