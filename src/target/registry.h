// The registered targets of the generic attack pipeline.
//
// One list names every cipher the repo can attack through the unified
// DirectProbePlatform<Traits> + KeyRecoveryEngine<Recovery> pair.  The
// cross-cipher conformance suite (tests/target/conformance_test.cpp)
// iterates it, as do examples; porting a new table cipher means writing
// its traits/recovery header (see docs/TARGETS.md) and adding it here.
//
// Header-only: Gift64Recovery borrows Algorithm 1/2 from src/attack/, so
// translation units including this header must link grinch_attack.
#pragma once

#include <tuple>
#include <utility>

#include "common/key128.h"
#include "target/gift128_recovery.h"
#include "target/gift64_recovery.h"
#include "target/platform.h"
#include "target/present80_recovery.h"
#include "target/recovery_engine.h"

namespace grinch::target {

/// Every registered target, as the Recovery type driving the pipeline.
using RegisteredRecoveries =
    std::tuple<Gift64Recovery, Gift128Recovery, Present80Recovery>;

/// Calls `fn(Recovery{})` once per registered target.
template <typename Fn>
void for_each_registered_target(Fn&& fn) {
  std::apply([&](auto... recovery) { (fn(recovery), ...); },
             RegisteredRecoveries{});
}

/// Runs the whole pipeline against one target: generic direct-probe
/// platform (driven through the unified ObservationSource interface),
/// generic elimination engine, recovery result.  `victim_key` is
/// canonicalised to the cipher's key space first.
template <typename Recovery>
[[nodiscard]] RecoveryResult<Recovery> recover_key(
    const Key128& victim_key,
    const typename KeyRecoveryEngine<Recovery>::Config& engine_config = {},
    const typename DirectProbePlatform<Recovery>::Config& platform_config =
        {}) {
  DirectProbePlatform<Recovery> platform{platform_config,
                                         Recovery::canonical_key(victim_key)};
  ObservationSource<typename Recovery::Block>& source = platform;
  KeyRecoveryEngine<Recovery> engine{source, engine_config};
  return engine.run();
}

}  // namespace grinch::target
