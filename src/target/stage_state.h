// Per-stage elimination state, shared by the scalar and wide engines.
//
// KeyRecoveryEngine (target/recovery_engine.h) and the multi-trial
// WideRecoveryEngine (target/wide_engine.h) run the same per-stage state
// machine: candidate masks per segment, voted-elimination counters, the
// stall/backoff noise machinery, and the cursor/unresolved bookkeeping.
// This header holds that machine as a value type so both engines execute
// the *same code* — conformance between them then reduces to feeding the
// same observation sequence.
//
// RecoveryResult lives here too (it is the other type both engines
// produce); recovery_engine.h re-exports it by inclusion, so existing
// includes keep working.
//
// Hot path: at vote_threshold 1 (the paper's hard elimination) the keep
// mask comes from EliminationTable — a per-recovery precomputed
// (nibble, observation-byte) -> keep-mask table that collapses the
// per-candidate gather loop into two loads and an OR.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/key128.h"
#include "finisher/evidence.h"
#include "target/candidate_mask.h"
#include "target/line_set.h"

namespace grinch::target {

/// Outcome of one KeyRecoveryEngine run (or one WideRecoveryEngine lane).
template <typename Recovery>
struct RecoveryResult {
  bool success = false;
  bool key_verified = false;
  /// Every stage's candidate masks resolved via the cache channel (for
  /// PRESENT this means RK0; the low 16 bits still need the offline
  /// search, whose failure leaves success false).
  bool stages_resolved = false;
  Key128 recovered_key{};
  std::uint64_t total_encryptions = 0;
  /// Offline work (e.g. PRESENT's 2^16 exhaustive search); 0 when the
  /// recovery needs none.
  std::uint64_t offline_trials = 0;
  std::array<std::uint64_t, Recovery::kStages> stage_encryptions{};
  /// Recovered per-stage keys, one per resolved stage.
  std::vector<typename Recovery::StageKey> stage_keys;

  // --- noisy-channel accounting (all zero on a clean run) ---
  /// Times an observation emptied a segment's mask (or a segment
  /// stalled) and forced a reset, summed over segments and stages.
  std::uint64_t noise_restarts = 0;
  /// Observations the probe detectably missed (Observation::dropped);
  /// they cost budget but carry no information.
  std::uint64_t dropped_observations = 0;
  /// Per-segment reset counts, summed across stages (and attempts).
  std::array<std::uint32_t, Recovery::kSegments> segment_resets{};
  /// Full-attack restarts: every stage resolved but the assembled key
  /// failed verification (the channel lied consistently enough to lock a
  /// wrong candidate in), so the whole recovery re-ran.  Only possible
  /// on a faulty channel.
  std::uint64_t verify_restarts = 0;

  // --- partial-result contract (budget exhaustion) ---
  /// Stage in progress when the budget ran out; == Recovery::kStages
  /// when every stage resolved (then surviving_masks is meaningless).
  unsigned failed_stage = Recovery::kStages;
  /// The failed stage's surviving candidate masks, one per segment.  On
  /// a faulty channel the true candidates are *expected* (not
  /// guaranteed) to survive — voting makes wrong elimination
  /// exponentially unlikely, and resets re-open a wronged segment.
  std::array<std::uint16_t, Recovery::kSegments> surviving_masks{};
  /// log2 of the remaining cache-channel key-search space: surviving
  /// candidates of the failed stage plus the full entropy of the stages
  /// never reached.  0 when all stages resolved (offline_trials still
  /// applies separately).  A finisher run overwrites this with the joint
  /// space it actually searched (finisher.search_space_bits).
  double residual_key_bits = 0.0;

  // --- residual-key finisher (src/finisher/, Config::finish_partials) ---
  /// Per-stage presence evidence: an honest StageState snapshot for the
  /// failed stage of any partial, plus (finish mode) the accumulated
  /// all-segment evidence of every ML-assumed stage.  Empty on clean
  /// full recoveries.
  std::vector<finisher::StageEvidence<Recovery>> stage_evidence;
  /// Exact plaintext/ciphertext pairs captured for finisher candidate
  /// verification (finish mode only; probe faults never corrupt the
  /// victim's encryption, so the pairs are clean).
  std::vector<finisher::KnownPair<Recovery>> known_pairs;
  /// Residual-finisher outcome + statistics; outcome == kNotRun unless
  /// the finisher actually ran on this result.
  finisher::FinisherStats finisher;
};

/// The engine-config-derived elimination knobs StageState needs; built
/// once per run from KeyRecoveryEngine::Config.
struct ElimParams {
  unsigned base_threshold = 1;  ///< max(vote_threshold, 1)
  unsigned threshold_cap = 6;   ///< max(max_vote_threshold, base_threshold)
  unsigned backoff_resets = 6;  ///< segment resets per escalation; 0 = off
  unsigned stall_limit = 512;   ///< no-progress updates before reset; 0 = off
};

/// Precomputed hard-elimination table for one Recovery: for pre-key
/// nibble n, keep(word, n) is the candidate keep-mask of an observation
/// whose present LineSet word is `word` — bit c set iff index
/// Recovery::candidate_index(n, c) is present.  Replaces the
/// per-candidate bit-gather loop with two byte-indexed loads and an OR
/// (candidate indices always land in the low 16 observation bits).
template <typename Recovery>
class EliminationTable {
 public:
  [[nodiscard]] static const EliminationTable& instance() {
    static const EliminationTable table;
    return table;
  }

  [[nodiscard]] std::uint16_t keep(std::uint16_t word,
                                   unsigned nibble) const noexcept {
    const std::uint16_t* row = tab_[nibble].data();
    return static_cast<std::uint16_t>(row[word & 0xFFu] |
                                      row[256u + (word >> 8)]);
  }

 private:
  EliminationTable() {
    for (unsigned n = 0; n < 16; ++n) {
      for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
        const unsigned index = Recovery::candidate_index(n, c);
        const unsigned half = index >> 3;          // 0: bits 0..7, 1: 8..15
        const unsigned bit = index & 7u;
        for (unsigned byte = 0; byte < 256; ++byte) {
          if ((byte >> bit) & 1u) {
            tab_[n][half * 256 + byte] |=
                static_cast<std::uint16_t>(1u << c);
          }
        }
      }
    }
  }

  /// tab_[nibble][0..255] keys on the observation's low byte,
  /// tab_[nibble][256..511] on its high byte.
  std::array<std::array<std::uint16_t, 512>, 16> tab_{};
};

/// One attack stage's live elimination state.  The methods are the exact
/// bodies KeyRecoveryEngine used to hold as lambdas; both engines drive
/// them with the same ElimParams so their consumed-observation behavior
/// is bit-identical.
template <typename Recovery>
struct StageState {
  std::array<CandidateMask<Recovery::kCandidatesPerSegment>,
             Recovery::kSegments>
      masks{};
  /// Voted elimination state: per-candidate consecutive-absent counters
  /// (all inert at vote_threshold 1 on a clean channel).
  std::array<std::array<std::uint8_t, Recovery::kCandidatesPerSegment>,
             Recovery::kSegments>
      votes{};
  /// Presence-evidence tallies for the voted path's resolution
  /// confirmation (all candidates share a segment's update count, so raw
  /// counts compare directly).
  std::array<std::array<std::uint16_t, Recovery::kCandidatesPerSegment>,
             Recovery::kSegments>
      presence{};
  std::array<std::uint32_t, Recovery::kSegments> stage_resets{};
  /// update() calls per segment this stage (survives resets) — the
  /// denominator behind the exported presence evidence.
  std::array<std::uint32_t, Recovery::kSegments> update_counts{};
  std::array<std::uint32_t, Recovery::kSegments> stagnant{};
  std::array<std::uint8_t, Recovery::kSegments> extra_threshold{};
  /// Invariant: `cursor` is the lowest unresolved segment whenever
  /// `unresolved > 0`; maintained incrementally by update().
  unsigned unresolved = Recovery::kSegments;
  unsigned cursor = 0;
  /// Set by any reset since the caller last cleared it; the engines use
  /// it to collapse speculative batching after noise.
  bool reset_in_batch = false;

  void begin_stage() { *this = StageState{}; }

  void reset_segment(unsigned s, const ElimParams& params,
                     unsigned attempt_extra,
                     RecoveryResult<Recovery>& result) {
    masks[s].reset();
    votes[s] = {};
    presence[s] = {};
    stagnant[s] = 0;
    ++result.noise_restarts;
    ++result.segment_resets[s];
    ++stage_resets[s];
    reset_in_batch = true;
    // Segment-level backoff: a segment that keeps resetting faces a
    // channel its current threshold cannot beat — escalate it.
    if (params.backoff_resets > 0 &&
        stage_resets[s] % params.backoff_resets == 0 &&
        params.base_threshold + attempt_extra + extra_threshold[s] <
            params.threshold_cap) {
      ++extra_threshold[s];
    }
  }

  void update(unsigned s, const LineSet& present,
              const std::array<unsigned, Recovery::kSegments>& nibbles,
              const ElimParams& params, unsigned attempt_extra,
              RecoveryResult<Recovery>& result) {
    // keep bit c: candidate c's predicted S-Box index was present — or
    // absent fewer than `threshold` times in a row (voted mode).
    ++update_counts[s];
    std::uint16_t keep = 0;
    const std::uint64_t word = present.word();
    const unsigned threshold =
        std::min(params.threshold_cap,
                 params.base_threshold + attempt_extra + extra_threshold[s]);
    if (threshold <= 1) {
      keep = EliminationTable<Recovery>::instance().keep(
          static_cast<std::uint16_t>(word), nibbles[s]);
    } else {
      for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
        if ((word >> Recovery::candidate_index(nibbles[s], c)) & 1u) {
          votes[s][c] = 0;  // a presence pardons the candidate
          if (presence[s][c] != 0xFFFF) ++presence[s][c];
          keep |= static_cast<std::uint16_t>(1u << c);
        } else {
          votes[s][c] = static_cast<std::uint8_t>(
              std::min<unsigned>(votes[s][c] + 1u, 255u));
          if (votes[s][c] < threshold) {
            keep |= static_cast<std::uint16_t>(1u << c);
          }
        }
      }
    }
    const bool was_resolved = masks[s].resolved();
    const std::uint16_t prev = masks[s].mask();
    const std::uint16_t next = static_cast<std::uint16_t>(prev & keep);
    if (next == 0) {
      reset_segment(s, params, attempt_extra, result);  // noisy observation
    } else {
      masks[s].set_mask(next);
      if (threshold > 1 && !was_resolved && masks[s].resolved()) {
        // Resolution confirmation: the survivor must carry at least as
        // much presence evidence as every candidate it outlived.  The
        // true candidate's line is present in (almost) every observation,
        // an impostor's only when another access covers it — so a
        // survivor out-presenced by an eliminated candidate means the
        // channel likely killed the truth, and the segment starts over
        // rather than lock the impostor in.
        const unsigned survivor = masks[s].value();
        for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
          if (presence[s][c] > presence[s][survivor]) {
            reset_segment(s, params, attempt_extra, result);
            break;
          }
        }
      }
      if (!masks[s].resolved()) {
        if (next == prev) {
          // No progress: false presents can keep a wrong candidate alive
          // indefinitely; a reset re-rolls its vote state.  The limit
          // scales with the threshold — voted elimination legitimately
          // spaces mask changes ~threshold times further apart than hard
          // elimination does.
          if (params.stall_limit > 0 &&
              ++stagnant[s] >= params.stall_limit * threshold) {
            reset_segment(s, params, attempt_extra, result);
          }
        } else {
          stagnant[s] = 0;
        }
      }
    }
    const bool now_resolved = masks[s].resolved();
    if (was_resolved == now_resolved) return;
    if (now_resolved) {
      --unresolved;
      while (cursor < Recovery::kSegments && masks[cursor].resolved()) {
        ++cursor;
      }
    } else {
      // A reset can re-open a segment already counted resolved (joint
      // mode under noise); pull the cursor back if it jumped past it.
      ++unresolved;
      cursor = std::min(cursor, s);
    }
  }

  /// Fills the partial-result fields from this stage's live masks, and
  /// exports the stage's presence evidence (an honest epoch snapshot —
  /// voted-path tallies, cleared by resets) for the residual finisher.
  void fill_partial(RecoveryResult<Recovery>& result, unsigned stage) const {
    result.failed_stage = stage;
    double bits = 0.0;
    finisher::StageEvidence<Recovery> ev;
    ev.stage = stage;
    for (unsigned s = 0; s < Recovery::kSegments; ++s) {
      result.surviving_masks[s] = masks[s].mask();
      bits += std::log2(static_cast<double>(masks[s].size()));
      ev.masks[s] = masks[s].mask();
      ev.updates[s] = update_counts[s];
      for (unsigned c = 0; c < Recovery::kCandidatesPerSegment; ++c) {
        ev.presence[s][c] = presence[s][c];
      }
    }
    result.stage_evidence.push_back(ev);
    bits += static_cast<double>(Recovery::kStages - 1 - stage) *
            Recovery::kSegments *
            std::log2(static_cast<double>(Recovery::kCandidatesPerSegment));
    result.residual_key_bits = bits;
  }
};

}  // namespace grinch::target
