// The cipher-agnostic observation contract of the attack pipeline.
//
// Every platform — RTL-style direct probe, RTOS single-core SoC, mesh
// MPSoC, memory hierarchy — yields the same Observation shape: per-S-Box-
// index line presence plus metadata.  The ObservationSource interface is
// parameterised on the cipher's *block type only*, so 64-bit-block ciphers
// (GIFT-64, PRESENT-80) share one interface instantiation and attack
// engines can drive any platform of a matching block width polymorphically.
//
// Observation is a fixed-size value type (LineSet bitsets, no heap): the
// elimination engine consumes hundreds of thousands per figure and batch
// buffers hold them by value.  The monitored encryption's ciphertext is
// NOT part of an observation — the probe sees cache lines, not data; the
// attack fetches the published ciphertext of the *last* encryption through
// last_ciphertext() when it verifies a recovered key, which lets platforms
// truncate the simulated encryption at the probe point (the partial-round
// fast path, docs/TARGETS.md) and only complete it on demand.
//
// Probing-round semantics (documented also in DESIGN.md): "probing round
// k" for an attack stage `s` (0-based) means the probe observes the cache
// after k rounds of the monitored window have executed.  Which cipher
// round opens the window depends on the target's key-mix position (see
// CipherTraits::kFirstKeyDependentRound in the per-cipher traits): GIFT
// mixes the key *after* the S-Box layer, so stage s monitors cipher round
// s+1; PRESENT mixes it *before*, so stage 0 monitors round 0 directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "target/line_set.h"
#include "target/table_layout.h"

namespace grinch::target {

/// Probing technique selector.
enum class ProbeMethod : std::uint8_t { kFlushReload, kPrimeProbe };

/// What one monitored encryption yielded to the attacker.
struct Observation {
  /// present[i]: the cache line holding S-Box index i was resident.
  LineSet present;
  /// Cipher rounds (0-based, exclusive) whose accesses the probe covers.
  unsigned probed_after_round = 0;
  /// Attacker cycles spent preparing + probing.
  std::uint64_t attacker_cycles = 0;
  /// Trace-driven channel (paper's taxonomy, ref [10]: hits/misses are
  /// visible in the power trace): per monitored-round S-Box access
  /// (segment order), whether it HIT.  Empty when the platform does not
  /// capture traces.  Only meaningful with an attacker flush before the
  /// monitored round.
  LineSet sbox_hits;
  /// The probe missed this encryption's window (channel fault model,
  /// target/fault_model.h): the attacker *knows* the probe was late, so
  /// the observation is detectably useless and consumers must skip its
  /// content (the encryption still happened and still costs budget).
  /// Platforms never set this — only fault-injection decorators do.
  bool dropped = false;
};

/// Reusable buffer for observe_batch results (elements are fixed-size, so
/// a warm buffer never reallocates).
using ObservationBatch = std::vector<Observation>;

/// A platform the attack can drive: one monitored encryption per call.
/// `Block` is the cipher's plaintext/ciphertext type (std::uint64_t for
/// 64-bit-block ciphers, gift::State128 for GIFT-128).
template <typename Block>
class ObservationSource {
 public:
  virtual ~ObservationSource() = default;

  /// Runs one victim encryption of `plaintext` and returns the probe
  /// observation for attack stage `stage` (see header comment).
  virtual Observation observe(Block plaintext, unsigned stage) = 0;

  /// Observes `plaintexts` in order, as if observe() were called for each
  /// one left to right: out[i] is bit-identical to what the scalar call
  /// would have produced, and last_ciphertext() afterwards refers to the
  /// final element.  Platforms override this to amortise per-encryption
  /// bookkeeping (bounds derivation, prober/sink reuse) across the batch;
  /// the default is the scalar loop, so overriding is never required for
  /// correctness.  `out` is resized to the batch; reuse it across calls to
  /// keep the path allocation-free.
  virtual void observe_batch(std::span<const Block> plaintexts, unsigned stage,
                             ObservationBatch& out) {
    out.resize(plaintexts.size());
    for (std::size_t i = 0; i < plaintexts.size(); ++i) {
      out[i] = observe(plaintexts[i], stage);
    }
  }

  /// Hints which segment the attacker currently targets; platforms with
  /// precision probing (§III-D "Cache Probing Precision") time their
  /// probe right after that segment's S-Box access.  Default: ignored.
  virtual void focus_segment(unsigned segment) { (void)segment; }

  /// Table layout of the victim (the attack maps indices to lines).
  [[nodiscard]] virtual const TableLayout& layout() const = 0;

  /// line_id[i] = opaque id of the cache line holding S-Box index i.
  /// Indices with equal ids are indistinguishable to the prober.
  [[nodiscard]] virtual std::vector<unsigned> index_line_ids() const = 0;

  /// Full-width ciphertext of the last observed encryption (the attack
  /// verifies its recovered key against it).  Platforms running the
  /// partial-round fast path complete the encryption lazily here.
  [[nodiscard]] virtual Block last_ciphertext() const = 0;
};

/// Computes index->line ids for a layout under a given line size.
[[nodiscard]] std::vector<unsigned> compute_index_line_ids(
    const TableLayout& layout, unsigned line_bytes);

}  // namespace grinch::target
