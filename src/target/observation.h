// The cipher-agnostic observation contract of the attack pipeline.
//
// Every platform — RTL-style direct probe, RTOS single-core SoC, mesh
// MPSoC, memory hierarchy — yields the same Observation shape: per-S-Box-
// index line presence plus metadata.  The ObservationSource interface is
// parameterised on the cipher's *block type only*, so 64-bit-block ciphers
// (GIFT-64, PRESENT-80) share one interface instantiation and attack
// engines can drive any platform of a matching block width polymorphically.
//
// Observation is a fixed-size value type (LineSet bitsets, no heap): the
// elimination engine consumes hundreds of thousands per figure and batch
// buffers hold them by value.  The monitored encryption's ciphertext is
// NOT part of an observation — the probe sees cache lines, not data; the
// attack fetches the published ciphertext of the *last* encryption through
// last_ciphertext() when it verifies a recovered key, which lets platforms
// truncate the simulated encryption at the probe point (the partial-round
// fast path, docs/TARGETS.md) and only complete it on demand.
//
// Probing-round semantics (documented also in DESIGN.md): "probing round
// k" for an attack stage `s` (0-based) means the probe observes the cache
// after k rounds of the monitored window have executed.  Which cipher
// round opens the window depends on the target's key-mix position (see
// CipherTraits::kFirstKeyDependentRound in the per-cipher traits): GIFT
// mixes the key *after* the S-Box layer, so stage s monitors cipher round
// s+1; PRESENT mixes it *before*, so stage 0 monitors round 0 directly.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "cachesim/kernels/kernels.h"
#include "target/line_set.h"
#include "target/table_layout.h"

namespace grinch::target {

/// Probing technique selector.
enum class ProbeMethod : std::uint8_t { kFlushReload, kPrimeProbe };

/// What one monitored encryption yielded to the attacker.
struct Observation {
  /// present[i]: the cache line holding S-Box index i was resident.
  LineSet present;
  /// Cipher rounds (0-based, exclusive) whose accesses the probe covers.
  unsigned probed_after_round = 0;
  /// Attacker cycles spent preparing + probing.
  std::uint64_t attacker_cycles = 0;
  /// Trace-driven channel (paper's taxonomy, ref [10]: hits/misses are
  /// visible in the power trace): per monitored-round S-Box access
  /// (segment order), whether it HIT.  Empty when the platform does not
  /// capture traces.  Only meaningful with an attacker flush before the
  /// monitored round.
  LineSet sbox_hits;
  /// The probe missed this encryption's window (channel fault model,
  /// target/fault_model.h): the attacker *knows* the probe was late, so
  /// the observation is detectably useless and consumers must skip its
  /// content (the encryption still happened and still costs budget).
  /// Platforms never set this — only fault-injection decorators do.
  bool dropped = false;
};

/// Reusable buffer for observe_batch results (elements are fixed-size, so
/// a warm buffer never reallocates).
using ObservationBatch = std::vector<Observation>;

/// Struct-of-arrays batch of up to 64 observations, transposed: the
/// presence verdicts live row-major — bit `lane` of lanes_present(r) is
/// trial `lane`'s verdict for S-Box row r — so per-row fan-out,
/// dropped-lane skipping and cross-trial reductions are single word ops
/// instead of per-observation loops (docs/TARGETS.md, "Wide path").
///
/// store()/extract() round-trip exactly: extract(l) after store(l, o)
/// returns an Observation equal to `o`.  store() is idempotent per lane,
/// so a decorator may overwrite a lane with a corrected observation
/// (FaultyObservationSource does).  Lanes may carry different
/// present.size() values (per-lane `rows`), but lanes_present() words are
/// only meaningful across lanes of equal size.
class WideObservationBatch {
 public:
  static constexpr unsigned kMaxWidth = 64;

  /// Clears the batch to `width` lanes of (up to) `rows`-row verdicts.
  void reset(unsigned width, unsigned rows) {
    assert(width <= kMaxWidth && rows <= LineSet::kMaxBits);
    width_ = width;
    rows_ = rows;
    row_lanes_.fill(0);
    dropped_ = 0;
  }

  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] unsigned rows() const noexcept { return rows_; }

  /// Fast transposed writer for platforms: the lane's presence verdicts as
  /// one word over `rows()` rows, no sbox_hits, not dropped.
  void set_lane(unsigned lane, std::uint64_t present_word,
                unsigned probed_after, std::uint64_t cycles) noexcept {
    assert(lane < width_);
    const std::uint64_t bit = std::uint64_t{1} << lane;
    for (unsigned r = 0; r < rows_; ++r) {
      row_lanes_[r] =
          ((present_word >> r) & 1u) ? (row_lanes_[r] | bit)
                                     : (row_lanes_[r] & ~bit);
    }
    lane_rows_[lane] = static_cast<std::uint8_t>(rows_);
    lane_probed_after_[lane] = probed_after;
    lane_cycles_[lane] = cycles;
    dropped_ &= ~bit;
    lane_sbox_hits_[lane] = LineSet{};
  }

  /// Bulk transposed writer: one kernel 64x64 bit transpose replaces 64
  /// per-lane set_lane() scatters.  present_words[l] carries lane l's
  /// verdicts over rows() rows; entries for lanes >= width() and bits
  /// >= rows() must be zero (the transpose writes all 64 row words
  /// verbatim, and reset() guarantees those rows/bits read zero).
  /// Equivalent to set_lane(l, present_words[l], probed_after[l],
  /// cycles[l]) for every lane l < width() on a freshly reset() batch.
  void assign_all(const std::uint64_t* present_words,
                  const std::uint32_t* probed_after,
                  const std::uint64_t* cycles) noexcept {
    cachesim::kernels::active().transpose_64x64(present_words,
                                               row_lanes_.data());
    for (unsigned l = 0; l < width_; ++l) {
      lane_rows_[l] = static_cast<std::uint8_t>(rows_);
      lane_probed_after_[l] = probed_after[l];
      lane_cycles_[l] = cycles[l];
      lane_sbox_hits_[l] = LineSet{};
    }
    dropped_ = 0;
  }

  /// General writer (fallback paths, fault decorators): stores a full
  /// Observation into `lane`, overwriting whatever the lane held.
  void store(unsigned lane, const Observation& o) noexcept {
    assert(lane < width_ && o.present.size() <= LineSet::kMaxBits);
    o.present.transpose_into(row_lanes_.data(), static_cast<int>(lane));
    lane_rows_[lane] = static_cast<std::uint8_t>(o.present.size());
    lane_probed_after_[lane] = o.probed_after_round;
    lane_cycles_[lane] = o.attacker_cycles;
    const std::uint64_t bit = std::uint64_t{1} << lane;
    dropped_ = o.dropped ? (dropped_ | bit) : (dropped_ & ~bit);
    lane_sbox_hits_[lane] = o.sbox_hits;
  }

  /// Rebuilds lane `lane`'s Observation, bit-identical to what store()
  /// put in (or to the scalar observe() the platform's wide path models).
  [[nodiscard]] Observation extract(unsigned lane) const noexcept {
    assert(lane < width_);
    Observation o;
    o.present = LineSet::from_word(present_word(lane), lane_rows_[lane]);
    o.probed_after_round = lane_probed_after_[lane];
    o.attacker_cycles = lane_cycles_[lane];
    o.dropped = ((dropped_ >> lane) & 1u) != 0;
    o.sbox_hits = lane_sbox_hits_[lane];
    return o;
  }

  /// Lane `lane`'s presence verdicts gathered back into index-major
  /// order (the kernel column gather — hot in the engines' per-lane
  /// extract step).
  [[nodiscard]] std::uint64_t present_word(unsigned lane) const noexcept {
    return cachesim::kernels::active().gather_column(row_lanes_.data(),
                                                     lane_rows_[lane], lane);
  }

  /// Transposed accessor: bit l = lane l saw row `row` present.
  [[nodiscard]] std::uint64_t lanes_present(unsigned row) const noexcept {
    assert(row < LineSet::kMaxBits);
    return row_lanes_[row];
  }

  /// Bit l = lane l's observation is detectably dropped.
  [[nodiscard]] std::uint64_t dropped_lanes() const noexcept {
    return dropped_;
  }

 private:
  unsigned width_ = 0;
  unsigned rows_ = 0;
  /// row_lanes_[r] bit l: lane l's verdict for row r (the transposition).
  std::array<std::uint64_t, LineSet::kMaxBits> row_lanes_{};
  std::array<std::uint8_t, kMaxWidth> lane_rows_{};
  std::array<std::uint32_t, kMaxWidth> lane_probed_after_{};
  std::array<std::uint64_t, kMaxWidth> lane_cycles_{};
  std::uint64_t dropped_ = 0;
  std::array<LineSet, kMaxWidth> lane_sbox_hits_{};
};

/// A platform the attack can drive: one monitored encryption per call.
/// `Block` is the cipher's plaintext/ciphertext type (std::uint64_t for
/// 64-bit-block ciphers, gift::State128 for GIFT-128).
template <typename Block>
class ObservationSource {
 public:
  virtual ~ObservationSource() = default;

  /// Runs one victim encryption of `plaintext` and returns the probe
  /// observation for attack stage `stage` (see header comment).
  virtual Observation observe(Block plaintext, unsigned stage) = 0;

  /// Observes `plaintexts` in order, as if observe() were called for each
  /// one left to right: out[i] is bit-identical to what the scalar call
  /// would have produced, and last_ciphertext() afterwards refers to the
  /// final element.  Platforms override this to amortise per-encryption
  /// bookkeeping (bounds derivation, prober/sink reuse) across the batch;
  /// the default is the scalar loop, so overriding is never required for
  /// correctness.  `out` is resized to the batch; reuse it across calls to
  /// keep the path allocation-free.
  virtual void observe_batch(std::span<const Block> plaintexts, unsigned stage,
                             ObservationBatch& out) {
    out.resize(plaintexts.size());
    for (std::size_t i = 0; i < plaintexts.size(); ++i) {
      out[i] = observe(plaintexts[i], stage);
    }
  }

  /// observe_batch into a transposed WideObservationBatch: out.extract(i)
  /// is bit-identical to what observe(plaintexts[i], stage) would have
  /// produced, and last_ciphertext() afterwards refers to the final
  /// element.  plaintexts.size() must be <= WideObservationBatch::
  /// kMaxWidth.  Platforms with a lockstep fast path override this to
  /// advance all lanes through a shared transposed cache state
  /// (DirectProbePlatform); the default transposes the scalar batch, so
  /// overriding is never required for correctness.
  virtual void observe_wide(std::span<const Block> plaintexts, unsigned stage,
                            WideObservationBatch& out) {
    assert(plaintexts.size() <= WideObservationBatch::kMaxWidth);
    observe_batch(plaintexts, stage, scratch_);
    out.reset(static_cast<unsigned>(plaintexts.size()),
              scratch_.empty() ? 0u : scratch_.front().present.size());
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      out.store(static_cast<unsigned>(i), scratch_[i]);
    }
  }

  /// Hints which segment the attacker currently targets; platforms with
  /// precision probing (§III-D "Cache Probing Precision") time their
  /// probe right after that segment's S-Box access.  Default: ignored.
  virtual void focus_segment(unsigned segment) { (void)segment; }

  /// Table layout of the victim (the attack maps indices to lines).
  [[nodiscard]] virtual const TableLayout& layout() const = 0;

  /// line_id[i] = opaque id of the cache line holding S-Box index i.
  /// Indices with equal ids are indistinguishable to the prober.
  [[nodiscard]] virtual std::vector<unsigned> index_line_ids() const = 0;

  /// Full-width ciphertext of the last observed encryption (the attack
  /// verifies its recovered key against it).  Platforms running the
  /// partial-round fast path complete the encryption lazily here.
  [[nodiscard]] virtual Block last_ciphertext() const = 0;

 private:
  /// Warm buffer for the default observe_wide (never reallocates once hot).
  ObservationBatch scratch_;
};

/// Computes index->line ids for a layout under a given line size.
[[nodiscard]] std::vector<unsigned> compute_index_line_ids(
    const TableLayout& layout, unsigned line_bytes);

}  // namespace grinch::target
