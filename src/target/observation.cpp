#include "target/observation.h"

#include <map>

namespace grinch::target {

std::vector<unsigned> compute_index_line_ids(const TableLayout& layout,
                                             unsigned line_bytes) {
  std::vector<unsigned> ids(16);
  std::map<std::uint64_t, unsigned> line_of_base;
  for (unsigned i = 0; i < 16; ++i) {
    const std::uint64_t base =
        layout.sbox_row_addr(i) & ~std::uint64_t{line_bytes - 1};
    const auto [it, inserted] =
        line_of_base.emplace(base, static_cast<unsigned>(line_of_base.size()));
    ids[i] = it->second;
  }
  return ids;
}

}  // namespace grinch::target
