// The multi-trial wide key-recovery engine.
//
// WideRecoveryEngine runs up to 64 *independent recovery trials* (own
// victim key, own RNG seed, own fault channel) in lockstep: per outer
// step every unfinished lane crafts its next plaintext, all lanes'
// monitored encryptions execute as ONE WideObserveCore run over the
// transposed lockstep cache (cachesim/lockstep.h), and each lane consumes
// its extracted observation through the same StageState machine the
// scalar engine uses (target/stage_state.h).  That amortises the
// per-observation dispatch across the whole fleet — the multi-trial
// throughput benches (BM_WideRecovery) scale near-linearly with width.
//
// Conformance contract: lane i's RecoveryResult is bit-identical to
//
//   recover_key<Recovery>(specs[i].victim_key, cfg_i, platform_config)
//
// where cfg_i is this engine's Config with seed = specs[i].seed and
// faults.seed = specs[i].fault_seed — for every registered cipher, any
// width, with or without faults (tests/target/wide_conformance_test.cpp).
// Each lane replicates the scalar engine at max_batch = 1, which the
// scalar engine's speculative batching reproduces bit-identically for
// any max_batch, so the equality holds against default configs too.
// Per-lane fault channels (target/fault_channel.h) see exactly the
// scalar decorator's delivery sequence, including the finalize
// verification observation.
//
// On cache configurations without a lockstep fast path
// (!WideObserveCore::supported — FIFO/PLRU/Random, prefetchers) the
// same core runs in its per-lane fallback mode: every trial keeps a
// stable backing-lane slot whose scalar cache/prober state persists
// across group steps (reset at trial start), so the engine's gather/
// observe/scatter loop is identical in both modes and the results stay
// bit-identical to scalar trials (see wide_observe.h, "Per-lane
// fallback").
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/key128.h"
#include "common/rng.h"
#include "finisher/tracker.h"
#include "target/fault_channel.h"
#include "target/fault_model.h"
#include "target/observation.h"
#include "target/platform.h"
#include "target/recovery_engine.h"
#include "target/stage_state.h"
#include "target/wide_observe.h"

namespace grinch::target {

/// One lane's trial parameters.
struct WideTrialSpec {
  Key128 victim_key{};
  /// Engine RNG seed (crafting + finalize draws), like Config::seed.
  std::uint64_t seed = 0;
  /// Per-lane fault stream seed; replaces Config::faults.seed for this
  /// lane (ignored on a clean channel).
  std::uint64_t fault_seed = 0;
};

template <typename Recovery>
class WideRecoveryEngine {
 public:
  using Block = typename Recovery::Block;
  using Config = typename KeyRecoveryEngine<Recovery>::Config;
  using PlatformConfig = typename DirectProbePlatform<Recovery>::Config;

  WideRecoveryEngine(const Config& config,
                     const PlatformConfig& platform_config = {})
      : config_(config),
        platform_config_(platform_config),
        cipher_(platform_config.layout),
        line_ids_(compute_index_line_ids(platform_config.layout,
                                         platform_config.cache.line_bytes)),
        params_{std::max(config.vote_threshold, 1u),
                std::max(config.max_vote_threshold,
                         std::max(config.vote_threshold, 1u)),
                config.backoff_resets, config.stall_limit},
        faulted_(config.faults.any()),
        finishing_(config.finish_partials),
        core_(platform_config.cache, platform_config.layout) {
    states_.resize(WideObservationBatch::kMaxWidth);
  }

  /// Runs every trial to completion; results[i] belongs to specs[i].
  /// Trials are processed in lockstep groups of up to 64 lanes.
  [[nodiscard]] std::vector<RecoveryResult<Recovery>> run(
      std::span<const WideTrialSpec> specs) {
    std::vector<RecoveryResult<Recovery>> results;
    results.reserve(specs.size());
    for (std::size_t base = 0; base < specs.size();
         base += WideObservationBatch::kMaxWidth) {
      const std::size_t n = std::min<std::size_t>(
          WideObservationBatch::kMaxWidth, specs.size() - base);
      run_group(specs.subspan(base, n), results);
    }
    return results;
  }

 private:
  using Job = typename WideObserveCore<Recovery>::Job;

  /// One trial's live state.  Heap-pinned (unique_ptr) because Crafter
  /// holds a reference to the lane's RNG.
  struct Lane {
    explicit Lane(std::uint64_t seed) : rng(seed), crafter(rng) {}

    Xoshiro256 rng;  // must precede crafter (reference member order)
    typename Recovery::Crafter crafter;
    /// Finish-mode quota/evidence state (Config::finish_partials);
    /// inert otherwise.  Shared code with the scalar engine
    /// (finisher/tracker.h) keeps the lanes bit-identical to it.
    finisher::FinishTracker<Recovery> tracker;
    typename Recovery::TableCipher::Schedule schedule{};
    /// Stable backing-lane slot in the core for this trial's lifetime
    /// (keys the persistent per-lane cache state in fallback mode).
    unsigned slot = 0;
    std::optional<FaultChannel> channel;
    StageState<Recovery> st;
    std::vector<typename Recovery::StageKey> recovered;
    RecoveryResult<Recovery> result;
    unsigned stage = 0;
    unsigned attempt_extra = 0;
    bool observed_any = false;
    bool done = false;
    Block last_pt{};     ///< engine-level last observed plaintext
    Block pending_pt{};  ///< this step's crafted plaintext
    // Platform-level ciphertext bookkeeping of the core path: same
    // lazy-completion contract as DirectProbePlatform::last_ciphertext().
    Block wide_last_pt{};
    Block wide_state{};
    bool wide_ct_valid = true;  ///< Block{} before any observation
  };

  /// ObservationSource facade over one lane, handed to
  /// Recovery::finalize() for the key-verification observation.
  class LaneSource final : public ObservationSource<Block> {
   public:
    LaneSource(WideRecoveryEngine* engine, Lane* lane) noexcept
        : engine_(engine), lane_(lane) {}

    Observation observe(Block plaintext, unsigned stage) override {
      return engine_->observe_lane(*lane_, plaintext, stage);
    }
    [[nodiscard]] const TableLayout& layout() const override {
      return engine_->platform_config_.layout;
    }
    [[nodiscard]] std::vector<unsigned> index_line_ids() const override {
      return engine_->line_ids_;
    }
    [[nodiscard]] Block last_ciphertext() const override {
      return engine_->lane_last_ciphertext(*lane_);
    }

   private:
    WideRecoveryEngine* engine_;
    Lane* lane_;
  };

  void run_group(std::span<const WideTrialSpec> specs,
                 std::vector<RecoveryResult<Recovery>>& results) {
    std::vector<std::unique_ptr<Lane>> lanes;
    lanes.reserve(specs.size());
    for (const WideTrialSpec& spec : specs) {
      auto lane = std::make_unique<Lane>(spec.seed);
      const Key128 key = Recovery::canonical_key(spec.victim_key);
      lane->schedule = cipher_.make_schedule(key);
      // Each trial owns one backing-lane slot for its whole lifetime;
      // reset drops any previous trial's persistent fallback-lane cache
      // (a fast-path no-op), so the trial starts cold exactly like a
      // fresh scalar platform.
      lane->slot = static_cast<unsigned>(lanes.size());
      core_.reset_lane_state(lane->slot);
      if (finishing_) {
        lane->tracker.begin_stage(0, 0, config_.max_encryptions);
      }
      if (faulted_) {
        FaultProfile profile = config_.faults;
        profile.seed = spec.fault_seed;
        lane->channel.emplace(profile, platform_config_.layout,
                              std::span<const unsigned>(line_ids_));
      }
      lanes.push_back(std::move(lane));
    }

    std::vector<Lane*> active;
    active.reserve(lanes.size());
    for (;;) {
      // Gather: one crafted plaintext per unfinished lane (the scalar
      // engine's top-of-loop budget check happens here).
      jobs_.clear();
      active.clear();
      for (auto& owned : lanes) {
        Lane& lane = *owned;
        if (lane.done) continue;
        if (finishing_) {
          // Quota checkpoint (the scalar engine's finish-mode
          // top-of-loop check): assume every stage whose quota is
          // spent; assuming the last stage hands the lane to the
          // finisher.
          while (!lane.done && lane.result.total_encryptions >=
                                   lane.tracker.stage_end()) {
            lane.recovered.push_back(
                lane.tracker.assume_stage(lane.st, lane.result));
            ++lane.stage;
            lane.st.begin_stage();
            if (lane.stage < Recovery::kStages) {
              lane.tracker.begin_stage(lane.stage,
                                       lane.result.total_encryptions,
                                       config_.max_encryptions);
            } else {
              finish_lane(lane);
            }
          }
          if (lane.done) continue;
        } else if (config_.max_encryptions - lane.result.total_encryptions ==
                   0) {
          lane.st.fill_partial(lane.result, lane.stage);
          lane.done = true;
          continue;
        }
        lane.pending_pt =
            lane.crafter.craft(lane.st.cursor, lane.recovered, lane.stage);
        const ProbeWindow window = probe_window_for<Recovery>(
            lane.stage, platform_config_.probing_round);
        jobs_.push_back({&lane.schedule, lane.pending_pt, window,
                         platform_config_.use_flush ? window.monitored_from
                                                    : 0,
                         lane.slot});
        active.push_back(&lane);
      }
      if (active.empty()) break;

      // Observe: every active lane's encryption in one lockstep run
      // (per-lane fallback lanes advance their persistent caches here).
      core_.run(std::span<const Job>(jobs_), wide_batch_, states_.data());

      // Scatter: per lane, corrupt (own channel), consume, advance.
      for (std::size_t l = 0; l < active.size(); ++l) {
        Lane& lane = *active[l];
        Observation obs = wide_batch_.extract(static_cast<unsigned>(l));
        lane.wide_last_pt = lane.pending_pt;
        lane.wide_ct_valid = jobs_[l].window.emit_rounds >= Recovery::kRounds;
        if (lane.wide_ct_valid) lane.wide_state = states_[l];
        if (lane.channel.has_value()) lane.channel->corrupt(obs);
        consume(lane, obs);
      }
    }

    for (auto& owned : lanes) results.push_back(std::move(owned->result));
  }

  /// The scalar engine's consume step for one delivered observation.
  void consume(Lane& lane, const Observation& obs) {
    RecoveryResult<Recovery>& result = lane.result;
    lane.last_pt = lane.pending_pt;
    lane.observed_any = true;
    ++result.total_encryptions;
    ++result.stage_encryptions[lane.stage];
    if (obs.dropped) {
      // Detectable probe miss: budget spent, nothing learned.
      ++result.dropped_observations;
      return;
    }
    const auto nibbles =
        Recovery::pre_key_nibbles(lane.pending_pt, lane.recovered, lane.stage);
    if (finishing_) lane.tracker.note_observation(nibbles, obs.present);
    if constexpr (Recovery::kUpdateAllSegments) {
      for (unsigned s = 0; s < Recovery::kSegments; ++s) {
        lane.st.update(s, obs.present, nibbles, params_, lane.attempt_extra,
                       result);
      }
    } else {
      lane.st.update(lane.st.cursor, obs.present, nibbles, params_,
                     lane.attempt_extra, result);
    }
    if (lane.st.unresolved > 0) return;
    lane.recovered.push_back(Recovery::stage_key_from(lane.st.masks));
    ++lane.stage;
    lane.st.begin_stage();
    if (lane.stage < Recovery::kStages) {
      if (finishing_) {
        lane.tracker.begin_stage(lane.stage, lane.result.total_encryptions,
                                 config_.max_encryptions);
      }
      return;
    }
    finish_attempt(lane);
  }

  /// Every stage resolved: finalize, and either finish the lane or start
  /// the next full-attack attempt (scalar verify-restart semantics).
  void finish_attempt(Lane& lane) {
    if (finishing_ && lane.tracker.any_assumed()) {
      // An earlier stage was ML-assumed: the channel cannot verify this
      // attempt; the residual search does.
      finish_lane(lane);
      return;
    }
    RecoveryResult<Recovery>& result = lane.result;
    result.stages_resolved = true;
    result.stage_keys = lane.recovered;
    LaneSource source{this, &lane};
    const std::uint64_t last_ct =
        lane.observed_any
            ? Recovery::fold_ciphertext(source.last_ciphertext())
            : 0;
    Recovery::finalize(result, source, lane.rng, lane.last_pt, last_ct);
    if (result.success || !faulted_ ||
        result.total_encryptions >= config_.max_encryptions) {
      lane.done = true;
      return;
    }
    // Wrong key locked in by the channel: restart the whole recovery with
    // budget left, periodically hardening elimination.
    ++result.verify_restarts;
    if (config_.backoff_resets > 0 &&
        result.verify_restarts % config_.backoff_resets == 0 &&
        params_.base_threshold + lane.attempt_extra < params_.threshold_cap) {
      ++lane.attempt_extra;
    }
    lane.recovered.clear();
    result.stage_keys.clear();
    result.stages_resolved = false;
    result.key_verified = false;
    lane.stage = 0;
    lane.st.begin_stage();
    if (finishing_) {
      lane.tracker.begin_stage(0, result.total_encryptions,
                               config_.max_encryptions);
    }
  }

  /// Finish-mode lane completion: record the (partly assumed) stage
  /// keys, capture exact pairs through the lane's channel, and run the
  /// maximum-likelihood residual search inline (scalar-engine
  /// semantics, finisher/tracker.h).
  void finish_lane(Lane& lane) {
    RecoveryResult<Recovery>& result = lane.result;
    result.stage_keys = lane.recovered;
    LaneSource source{this, &lane};
    finisher::capture_known_pairs<Recovery>(source, lane.rng, 2, result);
    finisher::Options finish_options;
    finish_options.max_candidates = config_.finish_max_candidates;
    finish_options.pool = config_.finish_pool;
    finisher::finish_with_residual_search(result, finish_options);
    lane.done = true;
  }

  /// Single-lane observation for finalize (and any out-of-band caller):
  /// a width-1 core run on the lane's stable backing slot.
  Observation observe_lane(Lane& lane, Block plaintext, unsigned stage) {
    const ProbeWindow window =
        probe_window_for<Recovery>(stage, platform_config_.probing_round);
    const Job job{&lane.schedule, plaintext, window,
                  platform_config_.use_flush ? window.monitored_from : 0,
                  lane.slot};
    Block state{};
    core_.run(std::span<const Job>(&job, 1), scratch_wide_, &state);
    Observation obs = scratch_wide_.extract(0);
    lane.wide_last_pt = plaintext;
    lane.wide_ct_valid = window.emit_rounds >= Recovery::kRounds;
    if (lane.wide_ct_valid) lane.wide_state = state;
    if (lane.channel.has_value()) lane.channel->corrupt(obs);
    return obs;
  }

  [[nodiscard]] Block lane_last_ciphertext(Lane& lane) const {
    if (!lane.wide_ct_valid) {
      lane.wide_state = cipher_.encrypt_with_schedule(
          lane.wide_last_pt, lane.schedule, Recovery::kRounds, nullptr);
      lane.wide_ct_valid = true;
    }
    return lane.wide_state;
  }

  Config config_;
  PlatformConfig platform_config_;
  typename Recovery::TableCipher cipher_;
  std::vector<unsigned> line_ids_;
  ElimParams params_;
  bool faulted_;
  bool finishing_;
  /// Always constructed: fast path on supported configs, per-lane scalar
  /// fallback otherwise (wide_observe.h) — one engine loop either way.
  WideObserveCore<Recovery> core_;
  /// Group-step buffers, reused across the run.
  std::vector<Job> jobs_;
  WideObservationBatch wide_batch_;
  WideObservationBatch scratch_wide_;
  std::vector<Block> states_;
};

}  // namespace grinch::target
