// Deterministic channel fault injection over any ObservationSource.
//
// FaultyObservationSource decorates a platform with the fault vocabulary
// of target/fault_model.h: every delivered observation passes through the
// fault channel, which may evict monitored lines from it (false absents),
// add lines the victim never touched (false presents), mark it dropped
// (detectable probe miss), replace it with the previous delivered line
// set (stale) or with uniform garbage (burst).  Faults act at *cache
// line* granularity — indices sharing a line flip together — using the
// inner source's index_line_ids() grouping.
//
// Determinism: each fault mode owns an independent Xoshiro256 sub-seeded
// from FaultProfile::seed via SplitMix64, and draws exactly once per
// delivered observation when its rate is nonzero (line-level modes draw
// once per monitored line).  Corruption is therefore a pure function of
// the delivered-observation sequence, byte-reproducible across runs and
// thread counts, and identical whether observations arrive through
// observe() or observe_batch() — the batch override corrupts elements in
// delivery order.
//
// Speculative batching: KeyRecoveryEngine may observe a speculative batch
// and then consume only a prefix of it (recovery_engine.h).  Discarded
// elements must not advance the fault channel, or the batched engine
// would diverge from the scalar one.  observe_batch() therefore
// checkpoints the channel state after every element, and rewind_to(k)
// restores the state to "k elements consumed".  The engine calls it
// automatically when Config::faults is set; when wrapping a source
// manually, drive the engine with max_batch = 1 (strict scalar) or call
// rewind_to() yourself after partial consumption.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "target/fault_model.h"
#include "target/observation.h"

namespace grinch::target {

template <typename Block>
class FaultyObservationSource final : public ObservationSource<Block> {
 public:
  /// Faults delivered so far (consumed-prefix accurate: rewind_to() rolls
  /// counters back together with the random streams).
  struct Stats {
    std::uint64_t observations = 0;  ///< delivered through the channel
    std::uint64_t dropped = 0;       ///< marked Observation::dropped
    std::uint64_t stale = 0;         ///< previous line set replayed
    std::uint64_t bursts = 0;        ///< burst windows started
    std::uint64_t burst_corrupted = 0;  ///< observations inside a burst
    std::uint64_t lines_flipped_absent = 0;
    std::uint64_t lines_flipped_present = 0;
  };

  FaultyObservationSource(ObservationSource<Block>& inner,
                          const FaultProfile& profile)
      : inner_(&inner), profile_(profile) {
    SplitMix64 seeder{profile.seed};
    channel_.absent_rng = Xoshiro256{seeder.next()};
    channel_.present_rng = Xoshiro256{seeder.next()};
    channel_.drop_rng = Xoshiro256{seeder.next()};
    channel_.stale_rng = Xoshiro256{seeder.next()};
    channel_.burst_rng = Xoshiro256{seeder.next()};
    // Line grouping: rows of the observation bitset that share a cache
    // line corrupt together.  Row r holds sbox_entries_per_row indices,
    // and index_line_ids() names each index's line.
    const TableLayout& layout = inner.layout();
    const std::vector<unsigned> ids = inner.index_line_ids();
    rows_ = layout.sbox_rows();
    unsigned lines = 0;
    std::array<std::uint64_t, LineSet::kMaxBits> mask_of_line{};
    std::array<bool, LineSet::kMaxBits> seen{};
    for (unsigned r = 0; r < rows_; ++r) {
      const unsigned line = ids[r * layout.sbox_entries_per_row];
      mask_of_line[line] |= std::uint64_t{1} << r;
      if (!seen[line]) {
        seen[line] = true;
        ++lines;
      }
    }
    line_masks_.assign(mask_of_line.begin(), mask_of_line.begin() + lines);
  }

  Observation observe(Block plaintext, unsigned stage) override {
    Observation o = inner_->observe(plaintext, stage);
    corrupt(o);
    checkpoints_.clear();
    return o;
  }

  void observe_batch(std::span<const Block> plaintexts, unsigned stage,
                     ObservationBatch& out) override {
    inner_->observe_batch(plaintexts, stage, out);
    checkpoints_.clear();
    checkpoints_.push_back(channel_);
    for (Observation& o : out) {
      corrupt(o);
      checkpoints_.push_back(channel_);
    }
  }

  /// Restores the fault channel to the state after `consumed` elements of
  /// the last observe_batch() call, as if the discarded tail had never
  /// been observed.  A no-op when the whole batch was consumed or no
  /// batch is pending.
  void rewind_to(std::size_t consumed) {
    if (consumed < checkpoints_.size()) channel_ = checkpoints_[consumed];
    checkpoints_.clear();
  }

  void focus_segment(unsigned segment) override {
    inner_->focus_segment(segment);
  }
  [[nodiscard]] const TableLayout& layout() const override {
    return inner_->layout();
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override {
    return inner_->index_line_ids();
  }
  [[nodiscard]] Block last_ciphertext() const override {
    // Probe faults never touch the victim's encryption; the published
    // ciphertext passes through untouched.
    return inner_->last_ciphertext();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return channel_.stats; }
  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }

 private:
  /// Everything rewind_to() must restore: the five sub-streams, the burst
  /// countdown, the stale-replay memory, and the counters.
  struct ChannelState {
    Xoshiro256 absent_rng{0}, present_rng{0}, drop_rng{0}, stale_rng{0},
        burst_rng{0};
    unsigned burst_remaining = 0;
    LineSet last_present;
    bool has_last = false;
    Stats stats;
  };

  static bool hit(Xoshiro256& rng, double rate) noexcept {
    // 53-bit uniform in [0, 1): deterministic, unbiased enough for rates.
    const double u =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    return u < rate;
  }

  void corrupt(Observation& o) {
    ChannelState& ch = channel_;
    ++ch.stats.observations;

    // Fixed draw schedule: each enabled mode draws regardless of what the
    // other modes decided, so the streams stay independent of each
    // other's rates.  Precedence among the whole-observation modes is
    // burst > dropped > stale (a preempted attacker cannot also probe).
    bool burst_now = ch.burst_remaining > 0;
    if (profile_.burst_rate > 0.0 && !burst_now &&
        hit(ch.burst_rng, profile_.burst_rate)) {
      ch.burst_remaining = profile_.burst_length;
      ++ch.stats.bursts;
      burst_now = ch.burst_remaining > 0;
    }
    const bool drop_now =
        profile_.dropped_rate > 0.0 && hit(ch.drop_rng, profile_.dropped_rate);
    const bool stale_now =
        profile_.stale_rate > 0.0 && hit(ch.stale_rng, profile_.stale_rate);
    std::uint64_t evict_mask = 0;
    std::uint64_t inject_mask = 0;
    if (profile_.false_absent_rate > 0.0) {
      for (const std::uint64_t m : line_masks_) {
        if (hit(ch.absent_rng, profile_.false_absent_rate)) evict_mask |= m;
      }
    }
    if (profile_.false_present_rate > 0.0) {
      for (const std::uint64_t m : line_masks_) {
        if (hit(ch.present_rng, profile_.false_present_rate)) inject_mask |= m;
      }
    }

    if (burst_now) {
      --ch.burst_remaining;
      ++ch.stats.burst_corrupted;
      // Scheduler preemption: the probe reports uniform garbage occupancy.
      LineSet garbage;
      garbage.assign(rows_, false);
      for (const std::uint64_t m : line_masks_) {
        if (ch.burst_rng.coin() != 0) {
          for (unsigned r = 0; r < rows_; ++r) {
            if ((m >> r) & 1u) garbage.set(r, true);
          }
        }
      }
      o.present = garbage;
    } else if (drop_now) {
      ++ch.stats.dropped;
      // The probe missed the window: flag it (detectable) and report the
      // uninformative all-present set in case a consumer looks anyway.
      o.dropped = true;
      o.present.assign(rows_, true);
    } else if (stale_now && ch.has_last) {
      ++ch.stats.stale;
      o.present = ch.last_present;
    } else {
      const std::uint64_t before = o.present.word();
      const std::uint64_t after = (before & ~evict_mask) | inject_mask;
      ch.stats.lines_flipped_absent +=
          static_cast<std::uint64_t>(std::popcount(before & evict_mask));
      ch.stats.lines_flipped_present +=
          static_cast<std::uint64_t>(std::popcount(inject_mask & ~before));
      LineSet present;
      present.assign(rows_, false);
      for (unsigned r = 0; r < rows_; ++r) {
        if ((after >> r) & 1u) present.set(r, true);
      }
      o.present = present;
    }

    ch.last_present = o.present;
    ch.has_last = true;
  }

  ObservationSource<Block>* inner_;
  FaultProfile profile_;
  unsigned rows_ = 0;
  /// Per-line row bitmasks (one entry per distinct cache line).
  std::vector<std::uint64_t> line_masks_;
  ChannelState channel_;
  /// channel_ after each element of the pending batch (index 0 = before
  /// element 0); rewind_to() restores from here.
  std::vector<ChannelState> checkpoints_;
};

}  // namespace grinch::target
