// Deterministic channel fault injection over any ObservationSource.
//
// FaultyObservationSource decorates a platform with the fault vocabulary
// of target/fault_model.h: every delivered observation passes through the
// fault channel (target/fault_channel.h), which may evict monitored lines
// from it (false absents), add lines the victim never touched (false
// presents), mark it dropped (detectable probe miss), replace it with the
// previous delivered line set (stale) or with uniform garbage (burst).
// Faults act at *cache line* granularity — indices sharing a line flip
// together — using the inner source's index_line_ids() grouping.
//
// Determinism: each fault mode owns an independent Xoshiro256 sub-seeded
// from FaultProfile::seed via SplitMix64, and draws exactly once per
// delivered observation when its rate is nonzero (line-level modes draw
// once per monitored line).  Corruption is therefore a pure function of
// the delivered-observation sequence, byte-reproducible across runs and
// thread counts, and identical whether observations arrive through
// observe(), observe_batch() or observe_wide() — the batch overrides
// corrupt elements in delivery order.
//
// Speculative batching: KeyRecoveryEngine may observe a speculative batch
// and then consume only a prefix of it (recovery_engine.h).  Discarded
// elements must not advance the fault channel, or the batched engine
// would diverge from the scalar one.  observe_batch()/observe_wide()
// therefore checkpoint the channel state after every element, and
// rewind_to(k) restores the state to "k elements consumed".  The engine
// calls it automatically when Config::faults is set; when wrapping a
// source manually, drive the engine with max_batch = 1 (strict scalar) or
// call rewind_to() yourself after partial consumption.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "target/fault_channel.h"
#include "target/fault_model.h"
#include "target/observation.h"

namespace grinch::target {

template <typename Block>
class FaultyObservationSource final : public ObservationSource<Block> {
 public:
  using Stats = FaultChannel::Stats;

  FaultyObservationSource(ObservationSource<Block>& inner,
                          const FaultProfile& profile)
      : inner_(&inner),
        channel_(profile, inner.layout(), inner.index_line_ids()) {}

  Observation observe(Block plaintext, unsigned stage) override {
    Observation o = inner_->observe(plaintext, stage);
    channel_.corrupt(o);
    checkpoints_.clear();
    return o;
  }

  void observe_batch(std::span<const Block> plaintexts, unsigned stage,
                     ObservationBatch& out) override {
    inner_->observe_batch(plaintexts, stage, out);
    checkpoints_.clear();
    checkpoints_.push_back(channel_.state());
    for (Observation& o : out) {
      channel_.corrupt(o);
      checkpoints_.push_back(channel_.state());
    }
  }

  /// Wide transport with identical delivery semantics: the inner source
  /// fills the transposed batch (its lockstep fast path stays live), then
  /// each lane is corrupted in order and stored back.  extract(i)
  /// afterwards equals what the scalar observe() chain would deliver.
  void observe_wide(std::span<const Block> plaintexts, unsigned stage,
                    WideObservationBatch& out) override {
    inner_->observe_wide(plaintexts, stage, out);
    checkpoints_.clear();
    checkpoints_.push_back(channel_.state());
    for (unsigned lane = 0; lane < out.width(); ++lane) {
      Observation o = out.extract(lane);
      channel_.corrupt(o);
      out.store(lane, o);
      checkpoints_.push_back(channel_.state());
    }
  }

  /// Restores the fault channel to the state after `consumed` elements of
  /// the last observe_batch()/observe_wide() call, as if the discarded
  /// tail had never been observed.  A no-op when the whole batch was
  /// consumed or no batch is pending.
  void rewind_to(std::size_t consumed) {
    if (consumed < checkpoints_.size()) channel_.restore(checkpoints_[consumed]);
    checkpoints_.clear();
  }

  void focus_segment(unsigned segment) override {
    inner_->focus_segment(segment);
  }
  [[nodiscard]] const TableLayout& layout() const override {
    return inner_->layout();
  }
  [[nodiscard]] std::vector<unsigned> index_line_ids() const override {
    return inner_->index_line_ids();
  }
  [[nodiscard]] Block last_ciphertext() const override {
    // Probe faults never touch the victim's encryption; the published
    // ciphertext passes through untouched.
    return inner_->last_ciphertext();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return channel_.stats(); }
  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return channel_.profile();
  }

 private:
  ObservationSource<Block>* inner_;
  FaultChannel channel_;
  /// Channel state after each element of the pending batch (index 0 =
  /// before element 0); rewind_to() restores from here.
  std::vector<FaultChannel::State> checkpoints_;
};

}  // namespace grinch::target
