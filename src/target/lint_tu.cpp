// Lint translation unit for the header-only target library.
//
// The generic attack stack (DirectProbePlatform<Traits>,
// KeyRecoveryEngine<Recovery>, FaultyObservationSource<Block>, the traits
// and recovery headers behind them) is header-only: no regular TU
// instantiates every member of every combination, so compiler warnings —
// and the static-analysis CI jobs that piggyback on compilation — never
// see the code paths a future caller would.  Explicitly instantiating the
// full cross product here forces every member function through
// -Wall/-Wextra/-Wconversion (and cppcheck/clang-tidy in CI) even though
// the object file is linked nowhere.
#include <cstdint>

#include "target/faulty_source.h"
#include "target/registry.h"
#include "target/wide_engine.h"

namespace grinch::target {

// Platforms: one per registered cipher (Recovery derives from its Traits,
// so this also instantiates the traits-facing surface).
template class DirectProbePlatform<Gift64Recovery>;
template class DirectProbePlatform<Gift128Recovery>;
template class DirectProbePlatform<Present80Recovery>;

// Recovery engines across every registered target.
template class KeyRecoveryEngine<Gift64Recovery>;
template class KeyRecoveryEngine<Gift128Recovery>;
template class KeyRecoveryEngine<Present80Recovery>;

// Fault-injection channel over both block widths in use.
template class FaultyObservationSource<std::uint64_t>;
template class FaultyObservationSource<gift::State128>;

// Wide path: the lockstep observation core and the multi-trial engine,
// per registered cipher.
template class WideObserveCore<Gift64Recovery>;
template class WideObserveCore<Gift128Recovery>;
template class WideObserveCore<Present80Recovery>;
template class WideRecoveryEngine<Gift64Recovery>;
template class WideRecoveryEngine<Gift128Recovery>;
template class WideRecoveryEngine<Present80Recovery>;

// The pipeline entry point, per target, so its body is linted too.
template RecoveryResult<Gift64Recovery> recover_key<Gift64Recovery>(
    const Key128&, const KeyRecoveryEngine<Gift64Recovery>::Config&,
    const DirectProbePlatform<Gift64Recovery>::Config&);
template RecoveryResult<Gift128Recovery> recover_key<Gift128Recovery>(
    const Key128&, const KeyRecoveryEngine<Gift128Recovery>::Config&,
    const DirectProbePlatform<Gift128Recovery>::Config&);
template RecoveryResult<Present80Recovery> recover_key<Present80Recovery>(
    const Key128&, const KeyRecoveryEngine<Present80Recovery>::Config&,
    const DirectProbePlatform<Present80Recovery>::Config&);

}  // namespace grinch::target
