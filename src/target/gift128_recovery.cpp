#include "target/gift128_recovery.h"

#include <cassert>

#include "gift/permutation.h"
#include "gift/sbox.h"

namespace grinch::target {

TargetBits128 set_target_bits128(unsigned segment) {
  assert(segment < 32);
  const gift::BitPermutation& perm = gift::gift128_permutation();
  const gift::SBox& sbox = gift::gift_sbox();

  TargetBits128 t;
  t.segment = segment;
  t.bit_a = perm.inverse(4 * segment + 1);  // V_s position
  t.bit_b = perm.inverse(4 * segment + 2);  // U_s position
  t.seg_a = t.bit_a / 4;
  t.seg_b = t.bit_b / 4;

  const unsigned out_a = t.bit_a % 4;
  const unsigned out_b = t.bit_b % 4;
  t.list_a.reserve(8);  // every GIFT S-Box output bit is balanced
  t.list_b.reserve(8);
  for (unsigned x = 0; x < 16; ++x) {
    const unsigned y = sbox.apply(x);
    if ((y >> out_a) & 1u) t.list_a.push_back(x);
    if ((y >> out_b) & 1u) t.list_b.push_back(x);
  }
  return t;
}

std::array<unsigned, 32> pre_key_nibbles128(
    gift::State128 plaintext,
    std::span<const gift::RoundKey128> known_round_keys, unsigned stage) {
  assert(known_round_keys.size() >= stage);
  gift::State128 state = plaintext;
  for (unsigned r = 0; r < stage; ++r) {
    state = gift::Gift128::round_function(state, known_round_keys[r], r);
  }
  // A zero round key makes AddRoundKey the identity, so a full round with
  // it yields exactly the pre-key state (constants included).
  state = gift::Gift128::round_function(state, gift::RoundKey128{}, stage);
  std::array<unsigned, 32> out{};
  for (unsigned s = 0; s < 32; ++s) out[s] = state.nibble(s);
  return out;
}

gift::State128 PlaintextCrafter128::craft_state(const TargetBits128& target) {
  gift::State128 state{};
  for (unsigned s = 0; s < 32; ++s) {
    unsigned value;
    if (s == target.seg_a) {
      value = target.list_a[rng_->uniform(target.list_a.size())];
    } else if (s == target.seg_b) {
      value = target.list_b[rng_->uniform(target.list_b.size())];
    } else {
      value = rng_->nibble();
    }
    if (s < 16)
      state.lo |= static_cast<std::uint64_t>(value) << (4 * s);
    else
      state.hi |= static_cast<std::uint64_t>(value) << (4 * (s - 16));
  }
  return state;
}

gift::State128 PlaintextCrafter128::craft_plaintext(
    const TargetBits128& target,
    std::span<const gift::RoundKey128> known_round_keys, unsigned stage) {
  gift::State128 state = craft_state(target);
  for (unsigned r = stage; r-- > 0;) {
    state = gift::Gift128::inverse_round_function(state, known_round_keys[r], r);
  }
  return state;
}

Key128 assemble_master_key128(std::span<const gift::RoundKey128> round_keys) {
  assert(round_keys.size() == 2 &&
         "GIFT-128 uses 64 key bits per round; 2 rounds cover the key");
  const gift::KeyBitOrigins origins{2};
  Key128 key;
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned i = 0; i < 32; ++i) {
      key = key.with_bit(origins.u128_origin(a, i),
                         (round_keys[a].u >> i) & 1u);
      key = key.with_bit(origins.v128_origin(a, i),
                         (round_keys[a].v >> i) & 1u);
    }
  }
  return key;
}

void Gift128Recovery::finalize(RecoveryResult<Gift128Recovery>& result,
                               ObservationSource<gift::State128>& source,
                               Xoshiro256& rng, gift::State128 /*last_pt*/,
                               std::uint64_t /*last_ct*/) {
  result.recovered_key = assemble_master_key128(result.stage_keys);
  // Verify against one more observed encryption.
  const gift::State128 check_pt{rng.block64(), rng.block64()};
  (void)source.observe(check_pt, 0);
  ++result.total_encryptions;
  result.key_verified =
      gift::Gift128::encrypt(check_pt, result.recovered_key) ==
      source.last_ciphertext();
  result.success = result.key_verified;
}

}  // namespace grinch::target
