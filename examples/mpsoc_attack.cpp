// MPSoC scenario (paper §IV, platform ii): the attacker malware owns a
// mesh tile and probes the shared L1 through the NoC while the victim
// tile encrypts.  Demonstrates why the MPSoC is the *more* dangerous
// platform: remote probing (~400 ns) is orders of magnitude faster than a
// cipher round (~1.2 ms), so the attacker snoops every round — Table II's
// MPSoC row is 1/1/1.
//
//   $ build/examples/mpsoc_attack
#include <cstdio>

#include "attack/grinch.h"
#include "common/rng.h"
#include "noc/routing.h"
#include "soc/platform.h"

using namespace grinch;

int main() {
  Xoshiro256 rng{0x3350C};
  const Key128 victim_key = rng.key128();

  soc::MpSoc::Config cfg;  // 3x3 mesh, victim tile 0, attacker 2, cache 4
  soc::MpSoc mpsoc{cfg, victim_key};

  const noc::MeshTopology mesh{cfg.mesh_width, cfg.mesh_height};
  const noc::XyRouter router{mesh};
  std::printf("topology: %s\n", mesh.describe().c_str());
  auto print_route = [&](const char* who, noc::NodeId from, noc::NodeId to) {
    std::printf("%s route (XY): ", who);
    for (noc::NodeId n : router.route(from, to)) std::printf("%u ", n);
    std::printf("\n");
  };
  print_route("attacker -> shared cache", cfg.attacker_tile, cfg.cache_tile);
  print_route("victim   -> shared cache", cfg.victim_tile, cfg.cache_tile);

  std::printf("\nremote cache access:  %llu cycles = %.0f ns at %.0f MHz "
              "(paper: ~400 ns)\n",
              static_cast<unsigned long long>(mpsoc.remote_access_cycles()),
              mpsoc.remote_access_ns(), cfg.clock_mhz);
  std::printf("full probe sequence:  %llu cycles\n",
              static_cast<unsigned long long>(mpsoc.probe_sequence_cycles()));
  std::printf("first probed round:   %u (paper: 1 at every frequency)\n\n",
              mpsoc.first_probe_round());

  attack::GrinchConfig acfg;
  acfg.seed = 0x77;
  attack::GrinchAttack attack{mpsoc, acfg};
  const attack::AttackResult result = attack.run();

  std::printf("attack %s after %llu encryptions\n",
              result.success ? "succeeded" : "FAILED",
              static_cast<unsigned long long>(result.total_encryptions));
  if (result.success) {
    std::printf("recovered key matches: %s\n",
                result.recovered_key == victim_key ? "yes" : "NO");
  }
  const auto& stats = mpsoc.network().stats();
  std::printf("NoC traffic during the attack: %llu packets, %llu flits\n",
              static_cast<unsigned long long>(stats.packets),
              static_cast<unsigned long long>(stats.total_flits));
  return result.success && result.recovered_key == victim_key ? 0 : 1;
}
