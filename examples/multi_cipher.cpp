// Multi-cipher: every registered target through ONE attack pipeline.
//
//   $ build/examples/multi_cipher
//
// The unified target layer (src/target/) reduces "attack a cipher" to a
// traits description: iterate the registry and the same generic
// DirectProbePlatform + KeyRecoveryEngine pair recovers GIFT-64, GIFT-128
// and PRESENT-80 keys.  Porting a fourth table cipher means writing one
// traits/recovery header and registering it — see docs/TARGETS.md.
#include <cstdio>

#include "common/rng.h"
#include "target/registry.h"

using namespace grinch;

int main() {
  Xoshiro256 rng{0x7A26E75};

  target::for_each_registered_target([&](auto recovery) {
    using Recovery = decltype(recovery);
    const Key128 key = Recovery::canonical_key(rng.key128());

    const auto r = target::recover_key<Recovery>(key);

    std::printf("%-9s %2u stage(s) x %2u segments: %s in %llu encryptions",
                Recovery::kName, Recovery::kStages, Recovery::kSegments,
                r.success && r.recovered_key == key ? "key recovered"
                                                    : "FAILED",
                static_cast<unsigned long long>(r.total_encryptions));
    if (r.offline_trials != 0) {
      std::printf(" + %llu offline trials",
                  static_cast<unsigned long long>(r.offline_trials));
    }
    std::printf("\n");
  });

  std::printf("\nSame platform template, same elimination engine — the "
              "cipher-specific\nsurface is one traits header each.\n");
  return 0;
}
