// Full GRINCH attack demo: recovers a random 128-bit GIFT-64 key from
// cache observations on the paper-default platform, narrating the five
// methodology steps (Fig. 2 of the paper).
//
//   $ build/examples/full_key_recovery [hex-key]
#include <cstdio>
#include <string>

#include "attack/grinch.h"
#include "attack/target_bits.h"
#include "common/rng.h"
#include "soc/platform.h"

using namespace grinch;

int main(int argc, char** argv) {
  Xoshiro256 rng{0xDE30};
  Key128 victim_key = rng.key128();
  if (argc > 1 && !Key128::from_hex(argv[1], victim_key)) {
    std::fprintf(stderr, "usage: %s [32-hex-digit key]\n", argv[0]);
    return 1;
  }

  std::printf("victim key (secret): %s\n\n", victim_key.to_hex().c_str());

  // Step 1 preview: Algorithm 1 for segment 0.
  const attack::TargetBits t = attack::set_target_bits(0);
  std::printf("Algorithm 1 for segment 0: pin S-Box output bits %u (seg %u) "
              "and %u (seg %u)\n",
              t.bit_a, t.seg_a, t.bit_b, t.seg_b);
  std::printf("  list_a (inputs forcing a 1): ");
  for (unsigned x : t.list_a) std::printf("%x ", x);
  std::printf("\n  list_b (inputs forcing a 1): ");
  for (unsigned x : t.list_b) std::printf("%x ", x);
  std::printf("\n\n");

  // The platform: shared L1 (1024 lines, 16-way, 1-word lines), table-
  // based GIFT victim, Flush+Reload attacker, probe right after the
  // monitored round.
  soc::DirectProbePlatform::Config pcfg;
  soc::DirectProbePlatform platform{pcfg, victim_key};
  std::printf("platform: %s\n\n", pcfg.cache.describe().c_str());

  attack::GrinchConfig acfg;
  acfg.seed = 0x600D;
  attack::GrinchAttack attack{platform, acfg};
  const attack::AttackResult result = attack.run();

  for (unsigned s = 0; s < result.stages.size() && s < 4; ++s) {
    const attack::StageReport& st = result.stages[s];
    std::printf("stage %u (monitors cipher round %u): %s after %llu "
                "encryptions  -> round key u=%04x v=%04x\n",
                s, s + 2, st.success ? "resolved" : "FAILED",
                static_cast<unsigned long long>(st.encryptions),
                st.round_key.u, st.round_key.v);
  }

  if (!result.success) {
    std::printf("\nattack failed (budget exhausted)\n");
    return 1;
  }

  std::printf("\nrecovered key:       %s\n", result.recovered_key.to_hex().c_str());
  std::printf("total encryptions:   %llu (paper: < 400)\n",
              static_cast<unsigned long long>(result.total_encryptions));
  std::printf("key verified:        %s\n", result.key_verified ? "yes" : "no");
  std::printf("exact match:         %s\n",
              result.recovered_key == victim_key ? "yes" : "NO");
  return result.recovered_key == victim_key ? 0 : 1;
}
