// Single-core SoC scenario (paper §IV, platform i): victim and attacker
// share one RISC-V core under an RTOS with a 10 ms quantum.  Shows how
// the clock frequency decides which cipher round the attacker's first
// probe lands in (Table II's SoC row), and why low-frequency IoT parts
// are the most exposed.
//
//   $ build/examples/rtos_scheduling
#include <cstdio>

#include "attack/grinch.h"
#include "common/rng.h"
#include "soc/platform.h"

using namespace grinch;

int main() {
  Xoshiro256 rng{0x5C4ED};
  const Key128 victim_key = rng.key128();

  std::printf("RTOS quantum: 10 ms; victim runs one quantum, then the "
              "attacker probes.\n\n");
  std::printf("%-8s %-18s %-22s %s\n", "clock", "cycles/quantum",
              "victim round cost", "first probed round");

  for (double mhz : {10.0, 25.0, 50.0}) {
    soc::SingleCoreSoC::Config cfg;
    cfg.rtos.clock_mhz = mhz;
    soc::SingleCoreSoC soc{cfg, victim_key};
    const double cpr = soc.measured_cycles_per_round();
    std::printf("%-8.0f %-18llu %-22.0f %u\n", mhz,
                static_cast<unsigned long long>(cfg.rtos.quantum_cycles()),
                cpr, soc.first_probe_round());
  }

  std::printf("\npaper Table II SoC row: 2 / 4 / 8 — a 10 MHz IoT device "
              "exposes round 2,\nwhere the first key bits are mixed in; at "
              "50 MHz the probe lands at round 8\nand the first-round attack "
              "needs far more encryptions (Fig. 3).\n\n");

  // Drive one actual monitored encryption at 10 MHz and show what the
  // attacker's quantum captured.
  soc::SingleCoreSoC::Config cfg;
  cfg.rtos.clock_mhz = 10.0;
  soc::SingleCoreSoC soc{cfg, victim_key};
  const soc::Observation obs = soc.observe(rng.block64(), 0);
  std::printf("one monitored encryption at 10 MHz: probe covered %u rounds; "
              "S-Box lines present: ",
              obs.probed_after_round);
  for (unsigned i = 0; i < 16; ++i) std::printf("%c", obs.present[i] ? '1' : '.');
  std::printf("\n");
  return 0;
}
