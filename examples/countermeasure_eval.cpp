// Countermeasure walkthrough (paper §IV-C): protects the same victim with
// (1) the packed 8x8 S-Box + 8-byte cache line and (2) the hardened
// UpdateKey, then re-runs GRINCH against each.
//
//   $ build/examples/countermeasure_eval
#include <cstdio>

#include "common/rng.h"
#include "countermeasures/evaluator.h"
#include "countermeasures/hardened_schedule.h"
#include "countermeasures/packed_sbox.h"
#include "gift/gift64.h"

using namespace grinch;

int main() {
  Xoshiro256 rng{0xCAFE};
  const Key128 key = rng.key128();

  // Countermeasure 1 geometry.
  const gift::TableLayout packed = cm::packed_sbox_layout();
  std::printf("countermeasure 1: S-Box reshaped to %u rows; occupies %u "
              "cache line(s) with 8-byte lines (vs %u lines unprotected)\n",
              packed.sbox_rows(), cm::sbox_lines_occupied(packed, 8),
              cm::sbox_lines_occupied(gift::TableLayout{}, 1));

  // Countermeasure 2 is still a correct cipher, just not standard GIFT.
  const std::uint64_t pt = rng.block64();
  const std::uint64_t ct = cm::HardenedGift64::encrypt(pt, key);
  std::printf("countermeasure 2: hardened encrypt/decrypt round-trip: %s; "
              "output differs from standard GIFT: %s\n\n",
              cm::HardenedGift64::decrypt(ct, key) == pt ? "ok" : "BROKEN",
              ct != gift::Gift64::encrypt(pt, key) ? "yes" : "no");

  std::printf("running GRINCH against each configuration (budget 20000 "
              "encryptions)...\n\n");
  for (const cm::EvaluationResult& r : cm::evaluate_all(key, 20000, 0x11)) {
    std::printf("  %-36s  sub-keys: %-3s  key retrieved: %-3s  "
                "(%llu encryptions)\n      %s\n",
                cm::to_string(r.protection),
                r.attack_succeeded ? "yes" : "no",
                r.key_retrieved ? "YES" : "no",
                static_cast<unsigned long long>(r.encryptions),
                r.note.c_str());
  }
  std::printf("\nconclusion (paper §IV-C): either countermeasure keeps the "
              "master key safe;\nthe packed S-Box removes the leak itself, "
              "the hardened schedule makes the\nleaked bits useless.\n");
  return 0;
}
