// Quickstart: the GIFT cipher library and the leaky table implementation.
//
//   $ build/examples/quickstart
//
// Encrypts/decrypts with GIFT-64 and GIFT-128, checks a published test
// vector, and shows the instrumented table implementation leaking its
// S-Box access indices — the observable GRINCH exploits.
#include <cstdio>

#include "common/hex.h"
#include "common/rng.h"
#include "gift/gift128.h"
#include "gift/gift64.h"
#include "gift/table_gift.h"

using namespace grinch;

int main() {
  // --- GIFT-64 with a published test vector (eprint 2017/622) ----------
  Key128 key;
  Key128::from_hex("bd91731eb6bc2713a1f9f6ffc75044e7", key);
  const std::uint64_t plaintext = 0xc450c7727a9b8a7dull;
  const std::uint64_t ciphertext = gift::Gift64::encrypt(plaintext, key);
  std::printf("GIFT-64  pt=%s  ct=%s (expected e3272885fa94ba8b)\n",
              to_hex_u64(plaintext).c_str(), to_hex_u64(ciphertext).c_str());
  std::printf("GIFT-64  decrypt round-trips: %s\n",
              gift::Gift64::decrypt(ciphertext, key) == plaintext ? "yes"
                                                                  : "NO");

  // --- GIFT-128 ---------------------------------------------------------
  const gift::State128 pt128{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const gift::State128 ct128 = gift::Gift128::encrypt(pt128, key);
  std::printf("GIFT-128 ct=%s%s\n", to_hex_u64(ct128.hi).c_str(),
              to_hex_u64(ct128.lo).c_str());
  std::printf("GIFT-128 decrypt round-trips: %s\n",
              gift::Gift128::decrypt(ct128, key) == pt128 ? "yes" : "NO");

  // --- The leaky table-based implementation -----------------------------
  const gift::TableGift64 table_impl;
  gift::VectorTraceSink sink;
  (void)table_impl.encrypt(plaintext, key, &sink);
  std::printf("\ntable-based GIFT-64 issued %zu table lookups over %u "
              "rounds\n",
              sink.accesses().size(), sink.rounds_seen());

  std::printf("round-1 S-Box indices (= plaintext nibbles — key-free!): ");
  for (const gift::TableAccess& a : sink.accesses()) {
    if (a.round == 0 && a.kind == gift::TableAccess::Kind::kSBox) {
      std::printf("%x", a.index);
    }
  }
  std::printf("\nround-2 S-Box indices (state XOR round key — leak!):    ");
  for (const gift::TableAccess& a : sink.accesses()) {
    if (a.round == 1 && a.kind == gift::TableAccess::Kind::kSBox) {
      std::printf("%x", a.index);
    }
  }
  std::printf("\n\nGRINCH observes which of those indices' cache lines were "
              "touched\nand inverts the round-key XOR — see "
              "examples/full_key_recovery.\n");
  return 0;
}
